package regidx

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func mustNew(t testing.TB) *Index {
	t.Helper()
	x, err := New(world, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewValidation(t *testing.T) {
	if _, err := New(world, 0, 4); err == nil {
		t.Error("zero cols accepted")
	}
	if _, err := New(geo.Rect{}, 4, 4); err == nil {
		t.Error("empty world accepted")
	}
}

func TestUpsertDeleteBasics(t *testing.T) {
	x := mustNew(t)
	r := geo.R(0.1, 0.1, 0.3, 0.3)
	if err := x.Upsert(1, r); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Error("Len")
	}
	got, ok := x.Region(1)
	if !ok || !got.Eq(r) {
		t.Errorf("Region = %v, %v", got, ok)
	}
	if err := x.Upsert(1, geo.Rect{Min: geo.Pt(1, 1)}); err == nil {
		t.Error("invalid region accepted")
	}
	if !x.Delete(1) || x.Delete(1) {
		t.Error("Delete misbehaved")
	}
	if x.Len() != 0 {
		t.Error("Len after delete")
	}
}

func TestQueryExactness(t *testing.T) {
	x := mustNew(t)
	x.Upsert(1, geo.R(0.1, 0.1, 0.2, 0.2))
	x.Upsert(2, geo.R(0.5, 0.5, 0.7, 0.7))
	x.Upsert(3, geo.R(0.0, 0.0, 1.0, 1.0)) // world-sized region

	got := x.Query(geo.R(0.15, 0.15, 0.16, 0.16), nil)
	want := map[uint64]bool{1: true, 3: true}
	if len(got) != 2 {
		t.Fatalf("Query = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected id %d", id)
		}
	}
	// No duplicates for multi-cell regions.
	got = x.Query(world, nil)
	seen := map[uint64]int{}
	for _, id := range got {
		seen[id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("id %d returned %d times", id, n)
		}
	}
	if len(seen) != 3 {
		t.Errorf("world query found %d regions", len(seen))
	}
}

func TestUpsertMoveRebuckets(t *testing.T) {
	x := mustNew(t)
	x.Upsert(1, geo.R(0.0, 0.0, 0.1, 0.1))
	x.Upsert(1, geo.R(0.8, 0.8, 0.9, 0.9)) // move across buckets
	if got := x.Query(geo.R(0, 0, 0.2, 0.2), nil); len(got) != 0 {
		t.Errorf("stale bucket: %v", got)
	}
	if got := x.Query(geo.R(0.75, 0.75, 1, 1), nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("new bucket: %v", got)
	}
	// Same-bucket move keeps the entry findable.
	x.Upsert(1, geo.R(0.81, 0.81, 0.89, 0.89))
	if got := x.Query(geo.R(0.75, 0.75, 1, 1), nil); len(got) != 1 {
		t.Errorf("after same-bucket move: %v", got)
	}
}

// Property: Query always equals the brute-force intersection scan.
func TestPropQueryMatchesBrute(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		src := rng.New(seed)
		x, err := New(world, 8, 8)
		if err != nil {
			return false
		}
		model := map[uint64]geo.Rect{}
		ops := int(opsRaw%300) + 30
		for i := 0; i < ops; i++ {
			id := uint64(src.Intn(40)) + 1
			switch {
			case src.Float64() < 0.2:
				delete(model, id)
				x.Delete(id)
			default:
				c := geo.Pt(src.Float64(), src.Float64())
				r := geo.RectAround(c, 0.01+0.2*src.Float64()).Clip(world)
				model[id] = r
				if x.Upsert(id, r) != nil {
					return false
				}
			}
		}
		for trial := 0; trial < 5; trial++ {
			q := geo.RectAround(geo.Pt(src.Float64(), src.Float64()), 0.05+0.2*src.Float64()).Clip(world)
			got := map[uint64]bool{}
			for _, id := range x.Query(q, nil) {
				got[id] = true
			}
			want := 0
			for id, r := range model {
				if r.Intersects(q) {
					want++
					if !got[id] {
						return false
					}
				}
			}
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAll(t *testing.T) {
	x := mustNew(t)
	x.Upsert(1, geo.R(0, 0, 0.1, 0.1))
	x.Upsert(2, geo.R(0.5, 0.5, 0.6, 0.6))
	if got := x.All(nil); len(got) != 2 {
		t.Errorf("All = %v", got)
	}
}

func BenchmarkQuerySmall(b *testing.B) {
	x, _ := New(world, 32, 32)
	src := rng.New(1)
	for i := 0; i < 10000; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		x.Upsert(uint64(i+1), geo.RectAround(c, 0.02).Clip(world))
	}
	q := geo.R(0.45, 0.45, 0.55, 0.55)
	var buf []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.Query(q, buf[:0])
	}
}

func BenchmarkUpsertChurn(b *testing.B) {
	x, _ := New(world, 32, 32)
	src := rng.New(2)
	for i := 0; i < 10000; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		x.Upsert(uint64(i+1), geo.RectAround(c, 0.02).Clip(world))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%10000) + 1
		c := geo.Pt(src.Float64(), src.Float64())
		x.Upsert(id, geo.RectAround(c, 0.02).Clip(world))
	}
}
