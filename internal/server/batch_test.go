package server

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// mod1 wraps v into [0, 1) so synthetic moving-object walks stay in world.
func mod1(v float64) float64 { return v - float64(int(v)) }

// batchFixture loads a server with stationary objects, moving objects and
// private users so every batch query class has data to chew on.
func batchFixture(t testing.TB) *Server {
	t.Helper()
	s := newServer(t)
	loadObjects(t, s, 500, "gas", 3)
	for i := 0; i < 50; i++ {
		p := geo.Pt(mod1(0.013*float64(i+1)), mod1(0.019*float64(i+1)))
		if err := s.UpdateMoving(uint64(1000+i), p); err != nil {
			t.Fatal(err)
		}
	}
	loadPrivateUsers(t, s, 300, 0.05, 7)
	return s
}

// sequentialBatch answers the same entries through the per-query public
// methods — the reference the shared-execution engine must bit-equal.
func sequentialBatch(s *Server, entries []BatchEntry) []BatchItemResult {
	out := make([]BatchItemResult, len(entries))
	for i, e := range entries {
		switch e.Kind {
		case BatchPrivateRange:
			r, err := s.PrivateRange(e.Range)
			if err != nil {
				out[i].Err = &BatchEntryError{Index: i, Kind: e.Kind, Err: err}
			} else {
				out[i].Range = r
			}
		case BatchPrivateNN:
			r, err := s.PrivateNN(e.NN)
			if err != nil {
				out[i].Err = &BatchEntryError{Index: i, Kind: e.Kind, Err: err}
			} else {
				out[i].NN = r
			}
		case BatchPublicCount:
			r, err := s.PublicRangeCount(e.Count)
			if err != nil {
				out[i].Err = &BatchEntryError{Index: i, Kind: e.Kind, Err: err}
			} else {
				out[i].Count = r
			}
		}
	}
	return out
}

// assertItemsEqual compares batch items against the sequential reference,
// bitwise (float equality included — the engine promises bit-identity).
func assertItemsEqual(t *testing.T, got, want []BatchItemResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("item count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("item %d: err = %v, want %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			if got[i].Err.Error() != want[i].Err.Error() {
				t.Errorf("item %d: err %q, want %q", i, got[i].Err, want[i].Err)
			}
			continue
		}
		if !reflect.DeepEqual(got[i].Range, want[i].Range) {
			t.Errorf("item %d: range result diverges\n got %+v\nwant %+v", i, got[i].Range, want[i].Range)
		}
		if !reflect.DeepEqual(got[i].NN, want[i].NN) {
			t.Errorf("item %d: NN result diverges", i)
		}
		if !reflect.DeepEqual(got[i].Count, want[i].Count) {
			t.Errorf("item %d: count result diverges\n got %+v\nwant %+v", i, got[i].Count, want[i].Count)
		}
	}
}

func TestBatchQueryEmpty(t *testing.T) {
	s := newServer(t)
	res := s.BatchQuery(nil)
	if len(res.Items) != 0 || res.Groups != 0 || res.SharedHits != 0 {
		t.Errorf("empty batch returned %+v", res)
	}
	if m := s.Metrics(); m.Batches != 0 || m.BatchEntries != 0 {
		t.Errorf("empty batch counted in metrics: %+v", m)
	}
}

// TestBatchQueryMixedMatchesSequential: a mixed batch with overlapping and
// disjoint entries of all three kinds must bit-equal the sequential path.
func TestBatchQueryMixedMatchesSequential(t *testing.T) {
	s := batchFixture(t)
	entries := []BatchEntry{
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.1, 0.1, 0.3, 0.3), Radius: 0.05}},
		{Kind: BatchPublicCount, Count: PublicRangeCountQuery{Query: geo.R(0.2, 0.2, 0.5, 0.5)}},
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.25, 0.25, 0.4, 0.4), Radius: 0.05, Class: "gas", Mode: RangeRounded}},
		{Kind: BatchPrivateNN, NN: PrivateNNQuery{Region: geo.R(0.6, 0.6, 0.7, 0.7)}},
		{Kind: BatchPublicCount, Count: PublicRangeCountQuery{Query: geo.R(0.45, 0.45, 0.8, 0.8)}},
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.8, 0.05, 0.9, 0.15), Radius: 0.02}},
		{Kind: BatchPrivateNN, NN: PrivateNNQuery{Region: geo.R(0.1, 0.8, 0.2, 0.9), Class: "gas"}},
	}
	want := sequentialBatch(s, entries)
	for _, workers := range []int{1, 2, 4, 8} {
		s.queryWorkers = workers
		res := s.BatchQuery(entries)
		assertItemsEqual(t, res.Items, want)
	}
	// Entries 0 and 2 overlap (one shared range descent); entries 1 and 4
	// overlap (one shared count probe); 3, 5, 6 stand alone.
	s.queryWorkers = 1
	res := s.BatchQuery(entries)
	if res.Groups != 5 {
		t.Errorf("Groups = %d, want 5", res.Groups)
	}
	if res.SharedHits != 2 {
		t.Errorf("SharedHits = %d, want 2", res.SharedHits)
	}
}

// TestBatchQueryInvalidEntryFailsAlone pins the failure-edge contract: an
// invalid entry inside what would be an overlapping group fails alone with
// a typed *BatchEntryError, and the valid members still bit-equal their
// solo answers — the bad entry never poisons the shared descent.
func TestBatchQueryInvalidEntryFailsAlone(t *testing.T) {
	s := batchFixture(t)
	entries := []BatchEntry{
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.1, 0.1, 0.4, 0.4), Radius: 0.05}},
		// Inverted rectangle: fails validation; overlaps entry 0's area.
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.Rect{Min: geo.Pt(0.3, 0.3)}, Radius: 0.05}},
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.35, 0.35, 0.5, 0.5), Radius: 0.05}},
		// Negative radius inside the same area.
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.2, 0.2, 0.3, 0.3), Radius: -1}},
		{Kind: BatchPublicCount, Count: PublicRangeCountQuery{Query: geo.Rect{Min: geo.Pt(1, 1)}}},
	}
	res := s.BatchQuery(entries)

	for _, bad := range []int{1, 3, 4} {
		var bee *BatchEntryError
		if !errors.As(res.Items[bad].Err, &bee) {
			t.Fatalf("item %d: error %v is not a *BatchEntryError", bad, res.Items[bad].Err)
		}
		if bee.Index != bad || bee.Kind != entries[bad].Kind {
			t.Errorf("item %d: error carries Index=%d Kind=%v, want Index=%d Kind=%v",
				bad, bee.Index, bee.Kind, bad, entries[bad].Kind)
		}
		// The per-entry error message matches the sequential path verbatim.
		var wantErr error
		switch entries[bad].Kind {
		case BatchPrivateRange:
			_, wantErr = s.PrivateRange(entries[bad].Range)
		case BatchPublicCount:
			_, wantErr = s.PublicRangeCount(entries[bad].Count)
		}
		if wantErr == nil || bee.Err.Error() != wantErr.Error() {
			t.Errorf("item %d: cause %q, want sequential error %q", bad, bee.Err, wantErr)
		}
	}

	// Valid members answered bit-identically to their solo runs.
	for _, good := range []int{0, 2} {
		solo, err := s.PrivateRange(entries[good].Range)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Items[good].Range, solo) {
			t.Errorf("item %d: result diverges from solo run", good)
		}
	}
	// The two valid range entries overlap each other → one shared descent.
	if res.Groups != 1 || res.SharedHits != 1 {
		t.Errorf("Groups=%d SharedHits=%d, want 1/1 (invalid entries excluded from grouping)",
			res.Groups, res.SharedHits)
	}
}

func TestBatchQueryUnknownKind(t *testing.T) {
	s := newServer(t)
	res := s.BatchQuery([]BatchEntry{{Kind: BatchKind(99)}})
	var bee *BatchEntryError
	if !errors.As(res.Items[0].Err, &bee) {
		t.Fatalf("unknown kind error = %v, want *BatchEntryError", res.Items[0].Err)
	}
	if bee.Index != 0 || bee.Kind != BatchKind(99) {
		t.Errorf("error = %+v", bee)
	}
}

func TestBatchQueryMetrics(t *testing.T) {
	s := batchFixture(t)
	entries := []BatchEntry{
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.1, 0.1, 0.3, 0.3), Radius: 0.05}},
		{Kind: BatchPrivateRange, Range: PrivateRangeQuery{Region: geo.R(0.2, 0.2, 0.4, 0.4), Radius: 0.05}},
		{Kind: BatchPrivateNN, NN: PrivateNNQuery{Region: geo.R(0.6, 0.6, 0.7, 0.7)}},
	}
	s.BatchQuery(entries)
	m := s.Metrics()
	if m.Batches != 1 || m.BatchEntries != 3 || m.BatchSharedHits != 1 {
		t.Errorf("metrics = Batches:%d Entries:%d SharedHits:%d, want 1/3/1",
			m.Batches, m.BatchEntries, m.BatchSharedHits)
	}
	// Per-class counters advance exactly as the sequential path would.
	if m.PrivateRangeQs != 2 || m.PrivateNNQs != 1 {
		t.Errorf("class counters = range:%d nn:%d, want 2/1", m.PrivateRangeQs, m.PrivateNNQs)
	}
}

// TestGroupOverlappingTransitive: overlap is grouped by connected
// component — A∩B and B∩C put A, B, C in one group even when A and C are
// disjoint — and the emitted order is deterministic.
func TestGroupOverlappingTransitive(t *testing.T) {
	rects := []geo.Rect{
		geo.R(0.0, 0.0, 0.2, 0.2),   // A: overlaps B only
		geo.R(0.15, 0.0, 0.35, 0.2), // B: bridges A and C
		geo.R(0.3, 0.0, 0.5, 0.2),   // C: overlaps B only
		geo.R(0.8, 0.8, 0.9, 0.9),   // D: isolated
	}
	at := func(i int) geo.Rect { return rects[i] }
	got := groupOverlapping([]int{0, 1, 2, 3}, at)
	want := [][]int{{0, 1, 2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("groups = %v, want %v", got, want)
	}
	// Permuted input indices still produce ascending members and groups
	// ordered by smallest member.
	got = groupOverlapping([]int{3, 2, 0, 1}, at)
	for _, g := range got {
		for k := 1; k < len(g); k++ {
			if g[k-1] >= g[k] {
				t.Errorf("group %v not ascending", g)
			}
		}
	}
	if groupOverlapping(nil, at) != nil {
		t.Error("empty input should group to nil")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hits := make([]int32, 100)
		parallelFor(len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

// benchBatchServer loads the benchmark fixture once per benchmark.
func benchBatchServer(b *testing.B, workers int) (*Server, []BatchEntry) {
	b.Helper()
	s := newServer(b)
	loadObjects(b, s, 5000, "gas", 3)
	loadPrivateUsers(b, s, 5000, 0.03, 7)
	s.queryWorkers = workers
	entries := buildDiffBatch(rng.New(99), 64)
	return s, entries
}

// BenchmarkServerBatchPerQuery is the no-sharing baseline: the same mix
// answered one query at a time through the public methods.
func BenchmarkServerBatchPerQuery(b *testing.B) {
	s, entries := benchBatchServer(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequentialBatch(s, entries)
	}
}

// BenchmarkServerBatchSequential measures shared execution alone:
// BatchQuery on the degenerate one-worker loop.
func BenchmarkServerBatchSequential(b *testing.B) {
	s, entries := benchBatchServer(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BatchQuery(entries)
	}
}

// BenchmarkServerBatchParallel adds the worker pool on top of sharing.
func BenchmarkServerBatchParallel(b *testing.B) {
	s, entries := benchBatchServer(b, runtime.GOMAXPROCS(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BatchQuery(entries)
	}
}
