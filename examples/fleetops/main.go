// Fleetops: a delivery-fleet operations scenario exercising the
// continuous and historical extensions together. Couriers are anonymized
// mobile users (their employer must not track them precisely); delivery
// trucks are public movers. A courier keeps a standing "trucks near me"
// monitor, dispatch watches live district occupancy, and at the end of the
// shift analytics answers "how busy was the depot zone?" from the cloaked
// history — all without anyone's exact trajectory ever being stored.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
)

func main() {
	world := geo.R(0, 0, 1, 1)
	sys, err := core.NewSystem(core.Config{
		World:         world,
		Incremental:   true,
		RecordHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 600 couriers walk the city; 15 trucks drive the road grid.
	courierSim, err := mobility.NewWaypointSim(mobility.WaypointConfig{
		Population: mobility.PopulationSpec{
			N: 600, World: world, Dist: mobility.Gaussian, Seed: 21,
		},
		MinSpeed: 0.004, MaxSpeed: 0.012,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := mobility.NewRoadNetwork(world, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	truckSim, err := mobility.NewRoadSim(mobility.RoadConfig{
		Net: net, N: 15, MinSpeed: 0.3, MaxSpeed: 0.8, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}

	prof := privacy.Constant(privacy.Requirement{K: 20})
	for _, u := range courierSim.Users() {
		if err := sys.RegisterUser(u.ID, prof); err != nil {
			log.Fatal(err)
		}
		sys.AdvanceTime()
		if _, err := sys.UpdateLocation(u.ID, u.Loc); err != nil {
			log.Fatal(err)
		}
	}

	// Courier 7 monitors trucks within 0.15 of her (region-anchored).
	courier := uint64(7)
	loc := courierSim.User(int(courier) - 1).Loc
	watch, err := sys.WatchNearby(courier, loc, 0.15)
	if err != nil {
		log.Fatal(err)
	}

	// Dispatch monitors the depot zone live.
	depot := geo.R(0.35, 0.35, 0.65, 0.65)
	depotQ, err := sys.Server.RegisterContinuousCount(depot)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shift simulation (60 ticks):")
	shiftStart := sys.Now()
	for tick := 0; tick < 60; tick++ {
		sys.AdvanceTime()
		courierSim.Tick()
		truckSim.Tick()
		for _, u := range courierSim.Users() {
			if _, err := sys.UpdateLocation(u.ID, u.Loc); err != nil {
				log.Fatal(err)
			}
		}
		for _, tr := range truckSim.Users() {
			if err := sys.UpdateMover(tr.ID, tr.Loc); err != nil {
				log.Fatal(err)
			}
		}
		// The courier's device refines her standing monitor locally.
		loc = courierSim.User(int(courier) - 1).Loc
		if tick%12 == 0 {
			if err := sys.MoveWatch(watch, courier, loc); err != nil {
				log.Fatal(err)
			}
			trucks, err := sys.NearbyNow(watch, loc, 0.15)
			if err != nil {
				log.Fatal(err)
			}
			ans, _ := sys.Server.ContinuousCount(depotQ)
			fmt.Printf("  tick %2d: courier %d sees %d trucks nearby; depot live count E=%.1f [%d,%d]\n",
				tick, courier, len(trucks), ans.Expected, ans.Lo, ans.Hi)
		}
	}
	shiftEnd := sys.Now()

	// End-of-shift analytics from the cloaked history.
	fmt.Println("\nend-of-shift analytics (from cloaked timelines only):")
	occ, err := sys.HistoricalOccupancy(depot, shiftStart, shiftEnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  depot zone: average %.1f couriers present (certainly within [%d,%d])\n",
		occ.Expected, occ.Lo, occ.Hi)

	firstHalf, _ := sys.HistoricalOccupancy(depot, shiftStart, shiftStart+(shiftEnd-shiftStart)/2)
	secondHalf, _ := sys.HistoricalOccupancy(depot, shiftStart+(shiftEnd-shiftStart)/2, shiftEnd)
	fmt.Printf("  first half: %.1f, second half: %.1f\n", firstHalf.Expected, secondHalf.Expected)

	// Per-courier audit: can analytics prove courier 7 visited the depot?
	lower, possible := sys.History.VisitProbability(courier, depot, shiftStart, shiftEnd)
	fmt.Printf("  courier %d depot visit: possible=%v, probability ≥ %.2f\n", courier, possible, lower)
	fmt.Printf("  history holds %d spans for %d couriers — regions only, no points\n",
		sys.History.SpanCount(), sys.History.Users())

	// Retention: prune everything older than the last 20 ticks.
	removed := sys.History.Prune(shiftEnd - 20)
	fmt.Printf("  retention pass removed %d expired spans\n", removed)
}
