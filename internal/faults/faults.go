// Package faults provides deterministic fault injection for the wire
// protocol: a net.Conn wrapper that drops, delays, truncates or resets the
// connection at a chosen frame boundary, a dialer that hands out a
// per-connection fault plan, and a listener wrapper that synthesizes
// transient Accept errors. Tests use it to prove the protocol tier's
// retry, reconnect, circuit-breaker and drain behavior without real
// network flakiness — every schedule is explicit or derived from a seed,
// so failures reproduce exactly.
package faults

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// Op selects the direction of the wrapped connection a rule applies to.
type Op uint8

// Directions.
const (
	Read Op = iota
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Action is what happens when a rule fires.
type Action uint8

// Actions.
const (
	// Drop closes the connection cleanly: the peer observes EOF, the local
	// side an ErrInjected error.
	Drop Action = iota
	// Reset aborts the connection with a TCP RST when the underlying
	// transport supports SO_LINGER; otherwise it degrades to Drop. The peer
	// observes ECONNRESET mid-frame rather than a clean close.
	Reset
	// Delay sleeps for the rule's Delay before letting the operation
	// proceed. The rule consumes itself; later frames pass undelayed.
	Delay
	// Truncate lets only KeepBytes bytes of the target frame through, then
	// closes the connection — the peer is left holding a torn frame.
	Truncate
	// Pause stalls the target frame mid-transfer: one byte crosses, then
	// the operation sleeps for the rule's Delay before the rest continues.
	// The peer holds a torn frame for the duration but the connection
	// survives. The rule consumes itself.
	Pause
	// Bandwidth caps throughput in the rule's direction to Rate bytes per
	// second from the target frame onward. Unlike every other action the
	// rule stays live for the connection's whole life — a slow link, not a
	// one-shot glitch.
	Bandwidth
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	case Pause:
		return "pause"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ErrInjected is returned (wrapped) by operations killed by a fault rule,
// so tests can tell injected failures from real ones.
var ErrInjected = errors.New("faults: injected fault")

// Rule triggers one Action when the Nth frame (1-based) crosses the
// connection in the given direction. Frame boundaries are recovered from
// the protocol's own length prefix, so rules align with requests and
// responses, not with arbitrary segment boundaries.
type Rule struct {
	Op     Op
	Nth    int
	Action Action
	// Delay is the sleep for Action Delay, and the mid-frame stall for
	// Action Pause.
	Delay time.Duration
	// KeepBytes is how much of the target frame Truncate lets through
	// (0 cuts even the length prefix).
	KeepBytes int
	// Rate is the Bandwidth cap in bytes per second.
	Rate int
}

// tracker recovers frame boundaries from a byte stream carrying
// [u32 length][length bytes] frames.
type tracker struct {
	hdr       [4]byte
	hdrN      int
	remaining int // body bytes left in the current frame
	frames    int // frames whose first byte has been seen
}

// current returns the 1-based index of the frame the next byte belongs to.
func (t *tracker) current() int {
	if t.hdrN == 0 && t.remaining == 0 {
		return t.frames + 1 // next byte starts a new frame
	}
	return t.frames
}

// feed advances the tracker by n stream bytes.
func (t *tracker) feed(p []byte) {
	for len(p) > 0 {
		if t.remaining == 0 {
			if t.hdrN == 0 {
				t.frames++
			}
			k := copy(t.hdr[t.hdrN:], p)
			t.hdrN += k
			p = p[k:]
			if t.hdrN == 4 {
				t.remaining = int(uint32(t.hdr[0]) | uint32(t.hdr[1])<<8 |
					uint32(t.hdr[2])<<16 | uint32(t.hdr[3])<<24)
				t.hdrN = 0
			}
			continue
		}
		k := t.remaining
		if k > len(p) {
			k = len(p)
		}
		t.remaining -= k
		p = p[k:]
	}
}

// Conn wraps a net.Conn and applies fault rules at frame boundaries. All
// methods are safe for concurrent use; reads and writes are tracked
// independently.
type Conn struct {
	net.Conn

	mu     sync.Mutex
	rules  []Rule
	rd, wr tracker
	killed bool
}

// Wrap applies rules to conn.
func Wrap(conn net.Conn, rules ...Rule) *Conn {
	return &Conn{Conn: conn, rules: append([]Rule(nil), rules...)}
}

// match pops the first live rule for (op, frame); nil if none fires.
// Bandwidth rules are persistent: they fire on every frame at or past
// their Nth and are never consumed.
func (c *Conn) match(op Op, frame int) *Rule {
	for i := range c.rules {
		r := &c.rules[i]
		if r.Op != op {
			continue
		}
		if r.Action == Bandwidth {
			if r.Nth > 0 && frame >= r.Nth {
				rule := *r
				return &rule
			}
			continue
		}
		if r.Nth > 0 && r.Nth == frame {
			rule := *r
			r.Nth = -1 // consumed
			return &rule
		}
	}
	return nil
}

// kill closes the connection, with an RST when asked and possible.
func (c *Conn) kill(reset bool) {
	c.killed = true
	if tc, ok := c.Conn.(*net.TCPConn); ok && reset {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// verdict is what a matched rule does to the current operation.
type verdict struct {
	budget int           // byte budget, -1 = unlimited
	pause  time.Duration // mid-frame stall after the first byte (Pause)
	rate   int           // bytes/sec cap (Bandwidth), 0 = uncapped
}

// apply runs one operation through the rule table. It returns the
// operation's verdict or an error if the connection was killed.
func (c *Conn) apply(op Op, n int) (verdict, error) {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return verdict{}, fmt.Errorf("%w: connection killed (%s)", ErrInjected, op)
	}
	t := &c.rd
	if op == Write {
		t = &c.wr
	}
	rule := c.match(op, t.current())
	if rule == nil {
		c.mu.Unlock()
		return verdict{budget: -1}, nil
	}
	switch rule.Action {
	case Delay:
		c.mu.Unlock()
		time.Sleep(rule.Delay)
		return verdict{budget: -1}, nil
	case Truncate:
		if rule.KeepBytes < n {
			n = rule.KeepBytes
		}
		c.mu.Unlock()
		return verdict{budget: n}, nil
	case Pause:
		c.mu.Unlock()
		return verdict{budget: -1, pause: rule.Delay}, nil
	case Bandwidth:
		c.mu.Unlock()
		return verdict{budget: -1, rate: rule.Rate}, nil
	default: // Drop, Reset
		c.kill(rule.Action == Reset)
		c.mu.Unlock()
		return verdict{}, fmt.Errorf("%w: %s on frame %d (%s)", ErrInjected, rule.Action, rule.Nth, op)
	}
}

// throttle sleeps long enough that n bytes took at least n/rate seconds.
func throttle(n, rate int) {
	if n > 0 && rate > 0 {
		time.Sleep(time.Duration(float64(n) / float64(rate) * float64(time.Second)))
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	v, err := c.apply(Read, len(p))
	if err != nil {
		return 0, err
	}
	if v.budget >= 0 && v.budget < len(p) {
		// Let the truncated tail through, then cut the connection so the
		// reader is left mid-frame.
		if v.budget > 0 {
			n, err := c.Conn.Read(p[:v.budget])
			c.mu.Lock()
			c.rd.feed(p[:n])
			c.kill(false)
			c.mu.Unlock()
			return n, err
		}
		c.mu.Lock()
		c.kill(false)
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: truncated read", ErrInjected)
	}
	if v.pause > 0 && len(p) > 0 {
		// Deliver one byte, then stall — the local reader (and through it
		// the peer's frame) hangs mid-frame for the pause.
		n, err := c.Conn.Read(p[:1])
		c.mu.Lock()
		c.rd.feed(p[:n])
		c.mu.Unlock()
		time.Sleep(v.pause)
		return n, err
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.rd.feed(p[:n])
	c.mu.Unlock()
	throttle(n, v.rate)
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	v, err := c.apply(Write, len(p))
	if err != nil {
		return 0, err
	}
	if v.budget >= 0 && v.budget < len(p) {
		var n int
		if v.budget > 0 {
			n, err = c.Conn.Write(p[:v.budget])
		}
		c.mu.Lock()
		c.wr.feed(p[:n])
		c.kill(false)
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("%w: truncated write", ErrInjected)
		}
		return n, err
	}
	if v.pause > 0 && len(p) > 0 {
		// Send one byte, stall, then send the rest — the peer is left
		// holding a torn frame for the duration.
		n, err := c.Conn.Write(p[:1])
		c.mu.Lock()
		c.wr.feed(p[:n])
		c.mu.Unlock()
		if err != nil {
			return n, err
		}
		time.Sleep(v.pause)
		m, err := c.Conn.Write(p[1:])
		c.mu.Lock()
		c.wr.feed(p[n : n+m])
		c.mu.Unlock()
		return n + m, err
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.wr.feed(p[:n])
	c.mu.Unlock()
	throttle(n, v.rate)
	return n, err
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.killed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// Dialer returns a dial function (compatible with the protocol client's
// WithDialer option) that wraps each new connection with the rules the
// plan assigns to it. conn is the 1-based index of the connection dialed
// through this dialer; a nil return means the connection is clean.
func Dialer(plan func(conn int) []Rule) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	dialed := 0
	return func(addr string) (net.Conn, error) {
		mu.Lock()
		dialed++
		n := dialed
		mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		rules := plan(n)
		if len(rules) == 0 {
			return conn, nil
		}
		return Wrap(conn, rules...), nil
	}
}

// Schedule builds a deterministic pseudo-random fault plan from a seed:
// each connection independently suffers one fault with probability p,
// uniformly choosing drop/reset/truncate on one of its first maxFrame
// frames. The same seed always yields the same plan — failing runs replay
// exactly.
func Schedule(seed uint64, p float64, maxFrame int) func(conn int) []Rule {
	if maxFrame < 1 {
		maxFrame = 1
	}
	return func(conn int) []Rule {
		src := rng.New(seed + uint64(conn)*0x9e3779b97f4a7c15)
		if src.Float64() >= p {
			return nil
		}
		actions := []Action{Drop, Reset, Truncate}
		act := actions[src.Intn(len(actions))]
		r := Rule{Op: Op(src.Intn(2)), Nth: 1 + src.Intn(maxFrame), Action: act}
		if act == Truncate {
			r.KeepBytes = src.Intn(5)
		}
		return []Rule{r}
	}
}

// FlakyListener wraps a net.Listener so the first failures Accept calls
// return a synthetic transient error before delegating. It exists to prove
// accept loops survive transient errno storms (EMFILE and friends) instead
// of dying with the first error.
type FlakyListener struct {
	net.Listener

	mu       sync.Mutex
	failures int
	seen     int
}

// ErrTransient is the synthetic temporary Accept error.
var ErrTransient = errors.New("faults: transient accept error")

// NewFlakyListener makes ln fail its first failures Accepts.
func NewFlakyListener(ln net.Listener, failures int) *FlakyListener {
	return &FlakyListener{Listener: ln, failures: failures}
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.seen < l.failures
	l.seen++
	l.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("%w (%d)", ErrTransient, l.seen)
	}
	return l.Listener.Accept()
}

// Accepts returns how many Accept calls the listener has seen.
func (l *FlakyListener) Accepts() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}
