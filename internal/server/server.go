// Package server implements the privacy-aware location-based database
// server of Section 6: it stores public data with exact locations
// (stationary objects in an R-tree, moving objects in a grid index) and
// private data as cloaked regions only, and processes the paper's two novel
// query classes — private queries over public data (Figure 5) and public
// queries over private data (Figure 6) — plus continuous count queries with
// the incremental shared execution of Section 5.3.
//
// The server never sees an exact location of an anonymized user: the only
// private-data write path accepts rectangles. That invariant (I9 in
// DESIGN.md) is enforced by construction and asserted in tests.
package server

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/regidx"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// PublicObject is a public-data item: exact location, never hidden.
type PublicObject struct {
	ID    uint64
	Class string
	Loc   geo.Point
}

// PrivateRecord is what the server stores about an anonymized user: her
// cloaked region and nothing else.
type PrivateRecord struct {
	ID     uint64
	Region geo.Rect
}

// SortObjects puts a candidate list into the canonical result order:
// ascending by (ID, Class, Loc.X, Loc.Y). Every query path sorts its
// answer with this one comparator, so a result assembled from partitions
// of the data (the routing tier's scatter/gather) is bit-identical to the
// single-server answer. The key is total over the objects any one answer
// can contain: stationary ids are unique, and a moving object that reuses
// a stationary id differs in class or location.
func SortObjects(objs []PublicObject) {
	slices.SortFunc(objs, cmpObjects)
}

// cmpObjects is the three-way form of lessObjects for slices.SortFunc
// (which avoids the reflect-based swapping of sort.Slice on this hot
// comparator). Ties across every key mean the structs are identical, so
// the unstable sort cannot produce an observable reordering.
func cmpObjects(a, b PublicObject) int {
	if a.ID != b.ID {
		if a.ID < b.ID {
			return -1
		}
		return 1
	}
	if a.Class != b.Class {
		if a.Class < b.Class {
			return -1
		}
		return 1
	}
	if a.Loc.X != b.Loc.X {
		if a.Loc.X < b.Loc.X {
			return -1
		}
		return 1
	}
	switch {
	case a.Loc.Y < b.Loc.Y:
		return -1
	case a.Loc.Y > b.Loc.Y:
		return 1
	}
	return 0
}

// lessObjects is the canonical result-order comparator behind SortObjects.
// The batch engine sorts shared streams and merges per-member subsequences
// with the same comparator, which keeps batch answers byte-identical to
// the sequential sort.
func lessObjects(a, b PublicObject) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Loc.X != b.Loc.X {
		return a.Loc.X < b.Loc.X
	}
	return a.Loc.Y < b.Loc.Y
}

// Server is the privacy-aware location-based database server. All methods
// are safe for concurrent use.
type Server struct {
	mu    sync.RWMutex
	world geo.Rect

	// Public data.
	stationary     *rtree.Tree
	stationaryMeta map[uint64]PublicObject
	moving         *grid.Index

	// Private data: user id -> cloaked region, plus a coarse rectangle
	// index that lets range-shaped public queries skip non-intersecting
	// users entirely.
	private map[uint64]geo.Rect
	privIdx *regidx.Index

	// Continuous queries (continuous.go, contprivate.go).
	cont     *continuousEngine
	contPriv *contPrivEngine

	// queryWorkers is the BatchQuery worker-pool width (batch.go), and
	// batchPool recycles each call's coordination scratch (*batchCoord)
	// so a steady stream of batch frames stops allocating per call.
	queryWorkers int
	batchPool    sync.Pool

	// privUpsertHook, when non-nil, replaces privIdx.Upsert inside
	// UpdatePrivate. Tests use it to force the region-index write to fail
	// and prove the map and index never diverge; production code never
	// sets it.
	privUpsertHook func(id uint64, region geo.Rect) error

	// Observability series (metrics.go) and span recording (trace.go;
	// tracer is nil-safe, so an un-traced server pays only nil checks).
	met    *metrics
	tracer *trace.Tracer
}

// Config configures a Server.
type Config struct {
	// World bounds all data. Required.
	World geo.Rect
	// MovingGridCols/Rows set the moving-object index resolution
	// (default 64×64).
	MovingGridCols, MovingGridRows int
	// Metrics is the registry the server registers its lbs_* series in.
	// Optional; a private registry is created when nil, so instrumentation
	// is always live and Registry() always works.
	Metrics *obs.Registry
	// QueryWorkers is the worker-pool width BatchQuery fans independent
	// query groups out to (default GOMAXPROCS; 1 = sequential).
	QueryWorkers int
	// Tracer records pipeline-stage spans for traced requests (the *Ctx
	// entry points). Optional; nil disables span recording.
	Tracer *trace.Tracer
}

// New builds an empty server.
func New(cfg Config) (*Server, error) {
	if !cfg.World.Valid() || cfg.World.Area() <= 0 {
		return nil, fmt.Errorf("server: invalid world %v", cfg.World)
	}
	cols, rows := cfg.MovingGridCols, cfg.MovingGridRows
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 64
	}
	mov, err := grid.New(cfg.World, cols, rows)
	if err != nil {
		return nil, err
	}
	pidx, err := regidx.New(cfg.World, 32, 32)
	if err != nil {
		return nil, err
	}
	workers := cfg.QueryWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		world:          cfg.World,
		stationary:     rtree.New(),
		stationaryMeta: make(map[uint64]PublicObject),
		moving:         mov,
		private:        make(map[uint64]geo.Rect),
		privIdx:        pidx,
		queryWorkers:   workers,
		met:            newMetrics(cfg.Metrics),
		tracer:         cfg.Tracer,
	}
	s.cont = newContinuousEngine(s)
	s.contPriv = newContPrivEngine(s)
	return s, nil
}

// World returns the server's world bounds.
func (s *Server) World() geo.Rect { return s.world }

// --- Public data management ---

// ValidateStationary runs the admission checks LoadStationary applies, in
// input order, without touching any state: duplicate ids and out-of-world
// locations are rejected with the first offending object. The routing
// tier calls this before partitioning a bulk load across shards, so a bad
// batch fails with exactly the error a single server would report and no
// shard receives a partial load.
func ValidateStationary(world geo.Rect, objs []PublicObject) error {
	seen := make(map[uint64]struct{}, len(objs))
	for _, o := range objs {
		if _, dup := seen[o.ID]; dup {
			return fmt.Errorf("server: duplicate stationary object id %d", o.ID)
		}
		if !world.Contains(o.Loc) {
			return fmt.Errorf("server: object %d at %v outside world", o.ID, o.Loc)
		}
		seen[o.ID] = struct{}{}
	}
	return nil
}

// LoadStationary bulk-loads stationary public objects, replacing any
// previously loaded set.
func (s *Server) LoadStationary(objs []PublicObject) error {
	if err := ValidateStationary(s.world, objs); err != nil {
		return err
	}
	items := make([]rtree.Item, len(objs))
	meta := make(map[uint64]PublicObject, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Loc: o.Loc}
		meta[o.ID] = o
	}
	tree := rtree.BulkLoad(items)
	s.mu.Lock()
	s.stationary = tree
	s.stationaryMeta = meta
	s.met.stationary.Set(float64(tree.Len()))
	s.mu.Unlock()
	return nil
}

// AddStationary inserts one stationary object.
func (s *Server) AddStationary(o PublicObject) error {
	if !s.world.Contains(o.Loc) {
		return fmt.Errorf("server: object %d at %v outside world", o.ID, o.Loc)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.stationaryMeta[o.ID]; dup {
		return fmt.Errorf("server: duplicate stationary object id %d", o.ID)
	}
	s.stationary.Insert(rtree.Item{ID: o.ID, Loc: o.Loc})
	s.stationaryMeta[o.ID] = o
	s.met.stationary.Set(float64(s.stationary.Len()))
	return nil
}

// RemoveStationary deletes a stationary object; it reports whether it
// existed.
func (s *Server) RemoveStationary(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.stationaryMeta[id]
	if !ok {
		return false
	}
	s.stationary.Delete(id, o.Loc)
	delete(s.stationaryMeta, id)
	s.met.stationary.Set(float64(s.stationary.Len()))
	return true
}

// StationaryCount returns the number of stationary public objects.
func (s *Server) StationaryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stationary.Len()
}

// UpdateMoving upserts a moving public object (e.g. a police car): public
// data carries exact locations by definition.
func (s *Server) UpdateMoving(id uint64, loc geo.Point) error {
	if !s.world.Contains(loc) {
		return fmt.Errorf("server: moving object %d at %v outside world", id, loc)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.movingUpdates.Inc()
	old, had := s.moving.Location(id)
	s.moving.Upsert(id, loc)
	s.met.moving.Set(float64(s.moving.Len()))
	s.contPriv.onMovingUpdate(id, old, had, loc)
	return nil
}

// RemoveMoving deletes a moving public object.
func (s *Server) RemoveMoving(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	last, had := s.moving.Location(id)
	if !s.moving.Delete(id) {
		return false
	}
	if had {
		s.contPriv.onMovingRemove(id, last)
	}
	s.met.moving.Set(float64(s.moving.Len()))
	return true
}

// MovingCount returns the number of moving public objects.
func (s *Server) MovingCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.moving.Len()
}

// --- Private data management ---

// UpdatePrivate stores the cloaked region of an anonymized user — the only
// write path for private data, and it accepts regions, never points
// (degenerate rectangles do occur for k=1 profiles, by the user's own
// choice). Continuous queries affected by the change are re-evaluated
// incrementally.
func (s *Server) UpdatePrivate(id uint64, region geo.Rect) error {
	if !region.Valid() {
		return fmt.Errorf("server: invalid region %v for user %d", region, id)
	}
	if !s.world.Intersects(region) {
		return fmt.Errorf("server: region %v for user %d outside world", region, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The region index is the write that can fail, so it goes first: a
	// failed upsert leaves the map, the index, and the continuous engines
	// exactly as they were. Mutating s.private before the index write would
	// leave the user counted by full scans but invisible to indexed
	// queries.
	upsert := s.privIdx.Upsert
	if s.privUpsertHook != nil {
		upsert = s.privUpsertHook
	}
	old, had := s.private[id]
	if err := upsert(id, region); err != nil {
		return err
	}
	s.met.privateUpdates.Inc()
	s.private[id] = region
	s.met.privateUsers.Set(float64(len(s.private)))
	if had {
		s.cont.onPrivateUpdate(id, old, region, true)
	} else {
		s.cont.onPrivateUpdate(id, geo.Rect{}, region, false)
	}
	return nil
}

// RemovePrivate deletes a user's cloaked region (deregistration).
func (s *Server) RemovePrivate(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.private[id]
	if !ok {
		return false
	}
	s.met.privateRemovals.Inc()
	delete(s.private, id)
	s.privIdx.Delete(id)
	s.met.privateUsers.Set(float64(len(s.private)))
	s.cont.onPrivateRemove(id, old)
	return true
}

// PrivateUserCount returns the number of tracked anonymized users.
func (s *Server) PrivateUserCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.private)
}

// PrivateRegion returns the stored region of one user.
func (s *Server) PrivateRegion(id uint64) (geo.Rect, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.private[id]
	return r, ok
}

// privateSnapshot returns the private records sorted by id; callers hold no
// lock. Sorting keeps downstream computations deterministic.
func (s *Server) privateSnapshot() []PrivateRecord {
	s.mu.RLock()
	out := make([]PrivateRecord, 0, len(s.private))
	for id, r := range s.private {
		out = append(out, PrivateRecord{ID: id, Region: r})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// resolveObjectLocked resolves item metadata. Stationary and moving ids
// are independent namespaces: a stationary lookup consults the metadata
// map, while a moving object always synthesizes its record from the grid
// entry (moving objects have no class). Resolving a moving item through
// the stationary map would return the wrong class *and* the wrong
// location whenever the two namespaces reuse an id.
func (s *Server) resolveObjectLocked(id uint64, loc geo.Point, moving bool) PublicObject {
	if !moving {
		if o, ok := s.stationaryMeta[id]; ok {
			return o
		}
	}
	return PublicObject{ID: id, Loc: loc}
}
