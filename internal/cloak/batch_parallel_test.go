package cloak

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// buildBatch generates a request mix with heavy key sharing: clusters of
// users at identical points with a small set of requirements.
func buildBatch(t testing.TB, n int, seed uint64) (*BatchQuadtree, []Request) {
	t.Helper()
	_, pyr, pts := population(t, n, mobility.Uniform, seed)
	src := rng.New(seed ^ 0xBA7C4)
	ks := []int{1, 5, 25}
	reqs := make([]Request, 0, 2*n)
	for i, p := range pts {
		reqs = append(reqs, Request{
			ID: uint64(i + 1), Loc: p,
			Req: privacy.Requirement{K: ks[i%len(ks)]},
		})
	}
	// Duplicate locations: several users at one point with one requirement.
	for c := 0; c < n/10; c++ {
		p := geo.Pt(src.Float64(), src.Float64())
		req := privacy.Requirement{K: ks[src.Intn(len(ks))]}
		for m := 0; m < 4; m++ {
			reqs = append(reqs, Request{ID: uint64(src.Intn(n)) + 1, Loc: p, Req: req})
		}
	}
	return &BatchQuadtree{Pyr: pyr}, reqs
}

// TestCloakAllParallelMatchesSequential: the fanned-out batch must be
// bit-identical to the sequential memo walk — results and shared-hit
// count alike, for every worker count.
func TestCloakAllParallelMatchesSequential(t *testing.T) {
	bq, reqs := buildBatch(t, 1000, 21)
	seqRes, seqHits := bq.CloakAll(reqs)
	if seqHits == 0 {
		t.Fatal("workload has no shared keys; the test is vacuous")
	}
	for _, workers := range []int{1, 2, 4, 8, 64} {
		parRes, parHits := bq.CloakAllParallel(reqs, workers)
		if parHits != seqHits {
			t.Errorf("workers=%d: shared hits %d != sequential %d", workers, parHits, seqHits)
		}
		if len(parRes) != len(seqRes) {
			t.Fatalf("workers=%d: length %d != %d", workers, len(parRes), len(seqRes))
		}
		for i := range seqRes {
			if parRes[i] != seqRes[i] {
				t.Fatalf("workers=%d: result %d diverges:\n  seq: %+v\n  par: %+v",
					workers, i, seqRes[i], parRes[i])
			}
		}
	}
}

// TestCloakAllParallelEmptyAndTiny covers the degenerate shapes: empty
// batch, single request, fewer requests than workers.
func TestCloakAllParallelEmptyAndTiny(t *testing.T) {
	bq, reqs := buildBatch(t, 100, 22)
	if res, hits := bq.CloakAllParallel(nil, 8); len(res) != 0 || hits != 0 {
		t.Errorf("empty batch: %v, %d", res, hits)
	}
	one := reqs[:1]
	seqRes, _ := bq.CloakAll(one)
	parRes, hits := bq.CloakAllParallel(one, 8)
	if hits != 0 || parRes[0] != seqRes[0] {
		t.Errorf("single request diverges: %+v vs %+v (hits %d)", parRes[0], seqRes[0], hits)
	}
}
