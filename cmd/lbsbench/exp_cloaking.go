package main

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/cloak"
	"repro/internal/mobility"
)

// leakRow evaluates one cloaker under the center attack and the edge-gap
// statistic, and times it.
func leakRow(name string, c cloak.Cloaker, p population, k, samples int, seed uint64) (row []interface{}) {
	// Timing over the sample set.
	stride := len(p.pts)/samples + 1
	t0 := time.Now()
	count := 0
	for i := 0; i < len(p.pts); i += stride {
		c.Cloak(uint64(i+1), p.pts[i], reqK(k))
		count++
	}
	perCloak := time.Since(t0) / time.Duration(count)

	// Leakage evaluation with anonymity sets attached.
	var sams []attack.Sample
	areaSum := 0.0
	for i := 0; i < len(p.pts) && len(sams) < samples; i += stride {
		loc := p.pts[i]
		res := c.Cloak(uint64(i+1), loc, reqK(k))
		set := p.gi.Search(res.Region, nil)
		s := attack.Sample{Region: res.Region, TrueLoc: loc}
		for _, o := range set {
			s.SetLocs = append(s.SetLocs, o.Loc)
		}
		sams = append(sams, s)
		areaSum += res.Region.Area()
	}
	rep := attack.Evaluate(attack.Center{}, sams, 0.005, seed)
	return []interface{}{
		name, k,
		perCloak,
		areaSum / float64(len(sams)),
		rep.Leakage,
		100 * rep.HitRate,
		rep.MeanEdgeGap,
	}
}

// expDataDependent regenerates Figure 3: the two data-dependent cloakers,
// their cost, and the leakage that motivates the space-dependent family.
func expDataDependent(cfg benchConfig) {
	runCloakComparison(cfg, []namedCloaker{
		{"naive (Fig 3a)", func(p population) cloak.Cloaker { return &cloak.Naive{Pop: p.pop} }},
		{"mbr (Fig 3b)", func(p population) cloak.Cloaker { return &cloak.MBR{Pop: p.pop} }},
	})
	fmt.Println("\nreading: naive leaks totally (center attack hits ≈100%);")
	fmt.Println("MBR has edge gap 0 — an anonymity-set member sits on every edge.")
}

// expSpaceDependent regenerates Figure 4: quadtree and grid cloaking.
func expSpaceDependent(cfg benchConfig) {
	runCloakComparison(cfg, []namedCloaker{
		{"quadtree (Fig 4a)", func(p population) cloak.Cloaker { return &cloak.Quadtree{Pyr: p.pyr} }},
		{"grid L6 (Fig 4b)", func(p population) cloak.Cloaker { return &cloak.Grid{Pyr: p.pyr, Level: 6} }},
		{"grid-ml L4", func(p population) cloak.Cloaker { return &cloak.Grid{Pyr: p.pyr, Level: 4, MultiLevel: true} }},
	})
	fmt.Println("\nreading: center-attack leakage stays near the uniform prior and")
	fmt.Println("edge gaps are positive — regions reveal only the partition cell.")
}

type namedCloaker struct {
	name string
	make func(p population) cloak.Cloaker
}

func runCloakComparison(cfg benchConfig, cloakers []namedCloaker) {
	for _, dist := range []mobility.Distribution{mobility.Uniform, mobility.Gaussian} {
		p := buildPopulation(cfg.n, dist, cfg.seed)
		fmt.Printf("\npopulation: %d users, %v distribution\n", cfg.n, dist)
		t := newTable("cloaker", "k", "cloak time", "mean area", "leakage", "hit %", "edge gap")
		for _, k := range []int{10, 50, 200} {
			for _, nc := range cloakers {
				t.row(leakRow(nc.name, nc.make(p), p, k, 300, cfg.seed)...)
			}
		}
		t.flush()
	}
}
