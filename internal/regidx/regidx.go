// Package regidx is a coarse-grid index over rectangles — the server's
// index for cloaked regions. Point indexes (R-tree, uniform grid) don't
// fit private data because every entry is a region, and cloaked regions
// vary from degenerate points (k=1 profiles) to whole-world rectangles
// (best-effort cloaks), so the index buckets each region under every
// coarse cell it touches and answers "which regions could intersect this
// query" by visiting only the query's cells.
//
// The index is intentionally approximate: Query returns a superset of the
// intersecting regions (exact filtering is one rectangle test per
// candidate, done by the caller), which keeps updates O(cells touched)
// and avoids any geometry in the hot path.
package regidx

import (
	"fmt"

	"repro/internal/geo"
)

// Index buckets rectangles by coarse grid cell. Mutations require external
// serialization; Query is read-only, so any number of queries may run
// concurrently under a shared (read) lock.
type Index struct {
	world      geo.Rect
	cols, rows int
	cells      [][]uint64
	regions    map[uint64]geo.Rect
}

// New builds an empty index with the given resolution.
func New(world geo.Rect, cols, rows int) (*Index, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("regidx: non-positive resolution %d×%d", cols, rows)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("regidx: invalid world %v", world)
	}
	return &Index{
		world:   world,
		cols:    cols,
		rows:    rows,
		cells:   make([][]uint64, cols*rows),
		regions: make(map[uint64]geo.Rect),
	}, nil
}

// Len returns the number of indexed regions.
func (x *Index) Len() int { return len(x.regions) }

// Region returns the stored rectangle for an id.
func (x *Index) Region(id uint64) (geo.Rect, bool) {
	r, ok := x.regions[id]
	return r, ok
}

func (x *Index) cellRange(r geo.Rect) (c0, r0, c1, r1 int) {
	clampCol := func(x0 float64, world geo.Rect, cols int) int {
		c := int((x0 - world.Min.X) / world.Width() * float64(cols))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	clampRow := func(y0 float64, world geo.Rect, rows int) int {
		c := int((y0 - world.Min.Y) / world.Height() * float64(rows))
		if c < 0 {
			c = 0
		}
		if c >= rows {
			c = rows - 1
		}
		return c
	}
	return clampCol(r.Min.X, x.world, x.cols), clampRow(r.Min.Y, x.world, x.rows),
		clampCol(r.Max.X, x.world, x.cols), clampRow(r.Max.Y, x.world, x.rows)
}

func (x *Index) forEachCell(r geo.Rect, fn func(ci int)) {
	c0, r0, c1, r1 := x.cellRange(r)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			fn(row*x.cols + col)
		}
	}
}

// Upsert inserts or replaces a region.
func (x *Index) Upsert(id uint64, region geo.Rect) error {
	if !region.Valid() {
		return fmt.Errorf("regidx: invalid region %v", region)
	}
	if old, ok := x.regions[id]; ok {
		// Fast path: same cell range means the buckets are already right.
		oc0, or0, oc1, or1 := x.cellRange(old)
		nc0, nr0, nc1, nr1 := x.cellRange(region)
		if oc0 == nc0 && or0 == nr0 && oc1 == nc1 && or1 == nr1 {
			x.regions[id] = region
			return nil
		}
		x.removeFromCells(id, old)
	}
	x.forEachCell(region, func(ci int) {
		x.cells[ci] = append(x.cells[ci], id)
	})
	x.regions[id] = region
	return nil
}

// Delete removes a region; it reports whether it existed.
func (x *Index) Delete(id uint64) bool {
	old, ok := x.regions[id]
	if !ok {
		return false
	}
	x.removeFromCells(id, old)
	delete(x.regions, id)
	return true
}

func (x *Index) removeFromCells(id uint64, region geo.Rect) {
	x.forEachCell(region, func(ci int) {
		cell := x.cells[ci]
		for i, v := range cell {
			if v == id {
				cell[i] = cell[len(cell)-1]
				x.cells[ci] = cell[:len(cell)-1]
				return
			}
		}
	})
}

// Query appends to dst the ids of all regions intersecting q (exactly —
// the per-candidate rectangle test is applied here) and returns dst.
// Query does not mutate the index, so concurrent queries are safe under a
// shared lock. Multi-cell queries dedup without allocating: a region is
// bucketed under every cell it touches, so each candidate is processed
// only at its first cell inside the query window — the cell at
// (max of the two ranges' starts) — which is also exactly where a
// first-encounter scan would have seen it, so emission order is
// unchanged.
func (x *Index) Query(q geo.Rect, dst []uint64) []uint64 {
	c0, r0, c1, r1 := x.cellRange(q)
	if c0 == c1 && r0 == r1 {
		for _, id := range x.cells[r0*x.cols+c0] {
			if x.regions[id].Intersects(q) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, id := range x.cells[row*x.cols+col] {
				reg := x.regions[id]
				ic0, ir0, _, _ := x.cellRange(reg)
				if ir0 < r0 {
					ir0 = r0
				}
				if ic0 < c0 {
					ic0 = c0
				}
				if row != ir0 || col != ic0 {
					continue // seen at an earlier window cell
				}
				if reg.Intersects(q) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// All appends every (id, region) pair's id to dst.
func (x *Index) All(dst []uint64) []uint64 {
	for id := range x.regions {
		dst = append(dst, id)
	}
	return dst
}
