package privacy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestModeString(t *testing.T) {
	if Passive.String() != "passive" || Active.String() != "active" || Query.String() != "query" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestRequirementValidate(t *testing.T) {
	if err := (Requirement{K: 1}).Validate(); err != nil {
		t.Errorf("k=1 should validate: %v", err)
	}
	if err := (Requirement{K: 0}).Validate(); err == nil {
		t.Error("k=0 should fail validation")
	}
	if err := (Requirement{K: 1, MinArea: -1}).Validate(); err == nil {
		t.Error("negative MinArea should fail")
	}
	if err := (Requirement{K: 1, MinArea: math.NaN()}).Validate(); err == nil {
		t.Error("NaN MinArea should fail")
	}
	if err := (Requirement{K: 1, MaxArea: math.NaN()}).Validate(); err == nil {
		t.Error("NaN MaxArea should fail")
	}
}

func TestEffectiveMaxArea(t *testing.T) {
	if v := (Requirement{}).EffectiveMaxArea(); !math.IsInf(v, 1) {
		t.Errorf("zero MaxArea should mean unconstrained, got %v", v)
	}
	if v := (Requirement{MaxArea: 5}).EffectiveMaxArea(); v != 5 {
		t.Errorf("EffectiveMaxArea = %v, want 5", v)
	}
}

func TestContradicts(t *testing.T) {
	if err := (Requirement{K: 10, MinArea: 2, MaxArea: 1}).Contradicts(); err == nil {
		t.Error("Amin > Amax should contradict")
	} else {
		var c *Contradiction
		if !errors.As(err, &c) {
			t.Errorf("error should be *Contradiction, got %T", err)
		}
		if c.Error() == "" {
			t.Error("contradiction message empty")
		}
	}
	if err := (Requirement{K: 10, MinArea: 1, MaxArea: 2}).Contradicts(); err != nil {
		t.Errorf("consistent requirement flagged: %v", err)
	}
	// MaxArea 0 means unconstrained, so any MinArea is fine.
	if err := (Requirement{K: 10, MinArea: 100}).Contradicts(); err != nil {
		t.Errorf("unconstrained MaxArea flagged: %v", err)
	}
}

func TestStricter(t *testing.T) {
	base := Requirement{K: 10, MinArea: 1, MaxArea: 10}
	cases := []struct {
		r    Requirement
		want bool
	}{
		{Requirement{K: 20, MinArea: 1, MaxArea: 10}, true}, // larger k
		{Requirement{K: 10, MinArea: 2, MaxArea: 10}, true}, // larger Amin
		{Requirement{K: 10, MinArea: 1, MaxArea: 5}, true},  // smaller Amax
		{base, false}, // equal
		{Requirement{K: 5, MinArea: 1, MaxArea: 10}, false},  // weaker k
		{Requirement{K: 20, MinArea: 0, MaxArea: 10}, false}, // mixed
	}
	for _, c := range cases {
		if got := c.r.Stricter(base); got != c.want {
			t.Errorf("(%v).Stricter(%v) = %v, want %v", c.r, base, got, c.want)
		}
	}
}

func TestEntryValidate(t *testing.T) {
	if err := (Entry{From: 0, To: 0, Req: Requirement{K: 1}}).Validate(); err != nil {
		t.Errorf("full-day entry should validate: %v", err)
	}
	if err := (Entry{From: -1, To: 10, Req: Requirement{K: 1}}).Validate(); err == nil {
		t.Error("negative From should fail")
	}
	if err := (Entry{From: 0, To: 1440, Req: Requirement{K: 1}}).Validate(); err == nil {
		t.Error("To=1440 should fail (use 0 for midnight)")
	}
	if err := (Entry{From: 0, To: 10, Req: Requirement{K: 0}}).Validate(); err == nil {
		t.Error("bad requirement should fail")
	}
}

func TestPaperExampleLookup(t *testing.T) {
	p := PaperExample()
	cases := []struct {
		hour  int
		wantK int
	}{
		{9, 1},     // daytime: exact location
		{16, 1},    // still daytime
		{17, 100},  // 5:00 PM boundary starts evening entry
		{21, 100},  // evening
		{22, 1000}, // 10:00 PM boundary starts night entry
		{23, 1000}, // night
		{3, 1000},  // past midnight, wrapped window
		{7, 1000},  // just before 8 AM
	}
	for _, c := range cases {
		req, err := p.AtMinute(c.hour * 60)
		if err != nil {
			t.Fatalf("AtMinute(%d:00): %v", c.hour, err)
		}
		if req.K != c.wantK {
			t.Errorf("at %d:00 k = %d, want %d", c.hour, req.K, c.wantK)
		}
	}
	// The night entry carries Amin=5 and unconstrained Amax.
	req, _ := p.AtMinute(23 * 60)
	if req.MinArea != 5 || !math.IsInf(req.EffectiveMaxArea(), 1) {
		t.Errorf("night requirement = %v", req)
	}
}

func TestAtTime(t *testing.T) {
	p := PaperExample()
	noon := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	req, err := p.At(noon)
	if err != nil || req.K != 1 {
		t.Errorf("At(noon) = %v, %v", req, err)
	}
	night := time.Date(2026, 7, 4, 23, 30, 0, 0, time.UTC)
	req, err = p.At(night)
	if err != nil || req.K != 1000 {
		t.Errorf("At(23:30) = %v, %v", req, err)
	}
}

func TestAtMinuteOutOfRange(t *testing.T) {
	p := PaperExample()
	if _, err := p.AtMinute(-1); err == nil {
		t.Error("negative minute should error")
	}
	if _, err := p.AtMinute(1440); err == nil {
		t.Error("minute 1440 should error")
	}
}

func TestEmptyProfile(t *testing.T) {
	var p Profile
	if _, err := p.AtMinute(100); !errors.Is(err, ErrNoEntry) {
		t.Errorf("empty profile should return ErrNoEntry, got %v", err)
	}
	if _, err := p.Strictest(); !errors.Is(err, ErrNoEntry) {
		t.Errorf("empty Strictest should return ErrNoEntry, got %v", err)
	}
	if p.Coverage() != 0 {
		t.Error("empty profile coverage should be 0")
	}
}

func TestGapProfile(t *testing.T) {
	p := MustProfile(Entry{From: 8 * 60, To: 10 * 60, Req: Requirement{K: 5}})
	if _, err := p.AtMinute(9 * 60); err != nil {
		t.Errorf("covered minute errored: %v", err)
	}
	if _, err := p.AtMinute(12 * 60); !errors.Is(err, ErrNoEntry) {
		t.Errorf("uncovered minute should ErrNoEntry, got %v", err)
	}
	if got := p.Coverage(); got != 120 {
		t.Errorf("Coverage = %d, want 120", got)
	}
}

func TestFirstEntryWins(t *testing.T) {
	p := MustProfile(
		Entry{From: 0, To: 0, Req: Requirement{K: 7}},
		Entry{From: 10 * 60, To: 11 * 60, Req: Requirement{K: 99}},
	)
	req, err := p.AtMinute(10*60 + 30)
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 7 {
		t.Errorf("first matching entry should win, got k=%d", req.K)
	}
}

func TestPublicAndConstant(t *testing.T) {
	req, err := Public().AtMinute(0)
	if err != nil || req.K != 1 {
		t.Errorf("Public profile = %v, %v", req, err)
	}
	c := Constant(Requirement{K: 42})
	if c.Coverage() != 1440 {
		t.Error("constant profile should cover the whole day")
	}
	req, _ = c.AtMinute(777)
	if req.K != 42 {
		t.Errorf("constant lookup = %v", req)
	}
}

func TestStrictest(t *testing.T) {
	p := PaperExample()
	req, err := p.Strictest()
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 1000 {
		t.Errorf("Strictest K = %d, want 1000", req.K)
	}
	if req.MinArea != 5 {
		t.Errorf("Strictest MinArea = %g, want 5", req.MinArea)
	}
	if req.MaxArea != 3 {
		t.Errorf("Strictest MaxArea = %g, want 3 (tightest bound)", req.MaxArea)
	}
}

func TestTimelineCoversDay(t *testing.T) {
	p := PaperExample()
	segs := p.Timeline()
	if len(segs) == 0 {
		t.Fatal("empty timeline")
	}
	if segs[0].From != 0 || segs[len(segs)-1].To != 1440 {
		t.Errorf("timeline does not span the day: %v", segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].From != segs[i-1].To {
			t.Errorf("timeline gap between %v and %v", segs[i-1], segs[i])
		}
	}
	// Paper example: wrapped night entry produces segments
	// [0,480) k=1000, [480,1020) k=1, [1020,1320) k=100, [1320,1440) k=1000.
	want := []struct {
		from, to, k int
	}{{0, 480, 1000}, {480, 1020, 1}, {1020, 1320, 100}, {1320, 1440, 1000}}
	if len(segs) != len(want) {
		t.Fatalf("timeline has %d segments, want %d: %v", len(segs), len(want), segs)
	}
	for i, w := range want {
		s := segs[i]
		if s.From != w.from || s.To != w.to || s.Req.K != w.k || !s.OK {
			t.Errorf("segment %d = %+v, want [%d,%d) k=%d", i, s, w.from, w.to, w.k)
		}
	}
}

func TestTimelineWithGap(t *testing.T) {
	p := MustProfile(Entry{From: 60, To: 120, Req: Requirement{K: 3}})
	segs := p.Timeline()
	okMinutes := 0
	for _, s := range segs {
		if s.OK {
			okMinutes += s.To - s.From
		}
	}
	if okMinutes != 60 {
		t.Errorf("timeline OK minutes = %d, want 60", okMinutes)
	}
}

func TestScaleAreas(t *testing.T) {
	p := MustProfile(
		Entry{From: 0, To: 0, Req: Requirement{K: 10, MinArea: 2, MaxArea: 4}},
	)
	s := p.ScaleAreas(0.5)
	req, _ := s.AtMinute(0)
	if req.MinArea != 1 || req.MaxArea != 2 {
		t.Errorf("scaled requirement = %v", req)
	}
	// Unconstrained MaxArea stays unconstrained.
	u := Constant(Requirement{K: 5, MinArea: 1}).ScaleAreas(10)
	req, _ = u.AtMinute(0)
	if req.MaxArea != 0 {
		t.Errorf("unconstrained MaxArea should stay 0, got %v", req.MaxArea)
	}
	// Original unchanged.
	req, _ = p.AtMinute(0)
	if req.MinArea != 2 {
		t.Error("ScaleAreas mutated the original profile")
	}
}

func TestNewProfileRejectsBadEntry(t *testing.T) {
	if _, err := NewProfile(Entry{From: 0, To: 10, Req: Requirement{K: 0}}); err == nil {
		t.Error("NewProfile accepted invalid entry")
	}
}

func TestMustProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProfile did not panic on invalid entry")
		}
	}()
	MustProfile(Entry{From: 0, To: 10, Req: Requirement{K: 0}})
}

func TestEntriesReturnsCopy(t *testing.T) {
	p := PaperExample()
	es := p.Entries()
	es[0].Req.K = 9999
	req, _ := p.AtMinute(9 * 60)
	if req.K == 9999 {
		t.Error("Entries leaked internal slice")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
}

// Property: every minute of the day, a wrapped entry and its two unwrapped
// halves agree on coverage.
func TestPropWrappedWindowEquivalence(t *testing.T) {
	f := func(fromRaw, toRaw, mRaw uint16) bool {
		from := int(fromRaw) % 1440
		to := int(toRaw) % 1440
		m := int(mRaw) % 1440
		if from == to {
			return true // full-day special case, tested elsewhere
		}
		wrapped := Entry{From: from, To: to, Req: Requirement{K: 2}}
		var want bool
		if from < to {
			want = m >= from && m < to
		} else {
			want = m >= from || m < to
		}
		return wrapped.covers(m) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Strictest is at least as strict as every entry's requirement.
func TestPropStrictestDominates(t *testing.T) {
	f := func(ks [3]uint8, minAreas, maxAreas [3]uint8) bool {
		var entries []Entry
		for i := 0; i < 3; i++ {
			req := Requirement{
				K:       int(ks[i]%100) + 1,
				MinArea: float64(minAreas[i]),
				MaxArea: float64(maxAreas[i]),
			}
			entries = append(entries, Entry{From: i * 400, To: i*400 + 300, Req: req})
		}
		p := MustProfile(entries...)
		s, err := p.Strictest()
		if err != nil {
			return false
		}
		for _, e := range entries {
			if s.K < e.Req.K || s.MinArea < e.Req.MinArea ||
				s.EffectiveMaxArea() > e.Req.EffectiveMaxArea() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequirementString(t *testing.T) {
	if s := (Requirement{K: 5, MinArea: 1, MaxArea: 2}).String(); s == "" {
		t.Error("empty Requirement string")
	}
}
