// Package rng provides small, fast, deterministic pseudo-random number
// streams for workload generation and Monte-Carlo estimation. Every
// experiment in the repository is seeded, so results are reproducible
// run-to-run; the generator is a xoshiro256** seeded through splitmix64,
// which has far better statistical behavior than math/rand's LCG-era
// sources while remaining allocation-free and trivially forkable.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random stream.
// The zero value is not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given seed via splitmix64, so that
// nearby seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed re-initializes the stream from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro requires a nonzero state; splitmix64 of any seed makes an
	// all-zero state astronomically unlikely, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Fork returns a new Source whose stream is statistically independent of
// the receiver's continued stream. It is the supported way to hand a
// deterministic sub-stream to a goroutine or sub-generator.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1.0p-53
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate via the Box–Muller transform.
func (r *Source) Norm() float64 {
	// Rejection-free polar form would cache a spare; plain Box–Muller keeps
	// the Source a pure 4-word state, which matters for Fork semantics.
	u := 1 - r.Float64() // (0,1] so the log is finite
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// NormMS returns a normal variate with the given mean and standard deviation.
func (r *Source) NormMS(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

// Perm fills out with a uniform random permutation of 0..len(out)-1.
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Zipf draws ranks in [0, n) with probability proportional to 1/(rank+1)^s.
// It precomputes the CDF once; use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
