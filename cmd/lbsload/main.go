// Command lbsload drives a running three-tier deployment with a synthetic
// closed-loop workload and reports throughput and latency percentiles for
// each flow — the capacity-check tool for the networked services.
//
// It either targets an existing deployment (-anon / -db addresses) or, with
// -selfhost, spins the whole stack up in-process on loopback first. At the
// end of the run it asks each daemon for its metric snapshot (MsgMetrics)
// and prints the daemons' own histogram percentiles next to the
// client-side numbers; peers running uninstrumented builds reject the
// message and the tables are skipped.
//
// Usage:
//
//	lbsload -selfhost -users 2000 -workers 8 -duration 10s
//	lbsload -anon localhost:7071 -db localhost:7070 -users 5000 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
)

// printLiveMetrics prints a percentile table for every histogram with
// observations in a daemon's wire snapshot. *_seconds histograms format as
// durations; size/area/ratio histograms print raw quantiles.
func printLiveMetrics(name string, series []obs.MetricSnapshot, err error) {
	if err != nil {
		log.Printf("lbsload: %s metrics unavailable (uninstrumented peer?): %v", name, err)
		return
	}
	fmt.Printf("\n%s histograms (from the daemon's own registry):\n", name)
	any := false
	for _, s := range series {
		if s.Kind != obs.KindHistogram || s.Hist.Count() == 0 {
			continue
		}
		any = true
		label := s.Name
		if len(s.Labels) > 0 {
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = l.Key + "=" + l.Value
			}
			label += "{" + strings.Join(parts, ",") + "}"
		}
		if strings.HasSuffix(s.Name, "_seconds") {
			line := s.Hist.Summary()
			// A captured trace exemplifying the slow tail, when one exists:
			// paste the id into the merged timeline to see where it went.
			if ex := s.Hist.ExemplarNear(99); ex != 0 {
				line += fmt.Sprintf(" p99-trace=%016x", ex)
			}
			fmt.Printf("  %-44s %s\n", label, line)
		} else {
			fmt.Printf("  %-44s n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
				label, s.Hist.Count(), s.Hist.Mean(),
				s.Hist.Quantile(50), s.Hist.Quantile(95), s.Hist.Quantile(99))
		}
	}
	if !any {
		fmt.Printf("  (no observations)\n")
	}
}

// safetyCounters reads the two anonymizer counters the -check gate is
// judged on: spill-queue evictions (acked updates that died) and cloaks
// that missed their k requirement.
func safetyCounters(anonAddr string) (drops, kMissed float64, err error) {
	ac, err := protocol.DialAnonymizer(anonAddr, protocol.WithCallTimeout(5*time.Second))
	if err != nil {
		return 0, 0, err
	}
	defer ac.Close()
	series, err := ac.Metrics()
	if err != nil {
		return 0, 0, err
	}
	for _, s := range series {
		if s.Kind != obs.KindCounter {
			continue
		}
		switch s.Name {
		case "anon_forward_queue_drops_total":
			drops = s.Value
		case "anon_cloak_k_missed_total":
			kMissed = s.Value
		}
	}
	return drops, kMissed, nil
}

// spanCtx wraps the root span of one logical request in a context, so
// every client call under it joins the same trace. With tracing off (nil
// tracer, or this request not sampled) the span is inert and the context
// is a plain Background.
func spanCtx(root trace.Span) (context.Context, trace.Span) {
	ctx := context.Background()
	if root.Recording() {
		ctx = trace.NewContext(ctx, root.Context())
	}
	return ctx, root
}

func main() {
	anonAddr := flag.String("anon", "localhost:7071", "anonymizer address")
	dbAddr := flag.String("db", "localhost:7070", "database address")
	selfhost := flag.Bool("selfhost", false, "start an in-process stack on loopback and load it")
	users := flag.Int("users", 2000, "registered mobile users")
	objs := flag.Int("objs", 2000, "public objects")
	k := flag.Int("k", 25, "anonymity level")
	workers := flag.Int("workers", 4, "concurrent closed-loop workers per flow")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	queryPct := flag.Int("query-pct", 20, "percent of user operations that are NN queries (rest are updates)")
	batch := flag.Int("batch", 1, "locations per update message (BatchUpdate when > 1)")
	queryBatch := flag.Int("query-batch", 1, "admin queries per database message (shared-execution BatchQuery when > 1)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "selfhost: anonymizer state shards")
	routerShards := flag.Int("router", 0, "selfhost: boot this many lbsd shards behind a routing tier and load that as the database (0 = single lbsd)")
	anonWorkers := flag.Int("anon-workers", runtime.GOMAXPROCS(0), "selfhost: anonymizer batch worker pool")
	queryWorkers := flag.Int("query-workers", 0, "selfhost: database batch-query worker pool (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "workload seed")
	callTimeout := flag.Duration("call-timeout", 5*time.Second, "per-call deadline on every client connection")
	faultPlan := flag.String("fault-plan", "", `inject faults on the load generator's connections, e.g. "1=r2:drop;*=w1:delay:5ms" (see faults.ParsePlan)`)
	traceOn := flag.Bool("trace", false, "mint a trace per logical request, pull the daemons' span rings at the end, and write one merged Chrome/Perfetto timeline")
	traceSample := flag.Float64("trace-sample", 1, "with -trace: fraction of requests to trace")
	traceOut := flag.String("trace-out", "trace.json", "with -trace: merged timeline output file")
	check := flag.Bool("check", true, "gate the run on safety invariants (zero lost updates, zero post-seed k violations) and exit 1 on violation")
	flag.Parse()

	world := geo.R(0, 0, 1, 1)
	quiet := func(string, ...interface{}) {}

	// All load-generator connections share one metrics registry, so the
	// run's retries/timeouts/breaker trips are visible in the summary.
	cliReg := obs.NewRegistry()
	cliOpts := []protocol.DialOption{
		protocol.WithCallTimeout(*callTimeout),
		protocol.WithClientMetrics(cliReg),
	}
	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(trace.Config{Process: "client", Sample: *traceSample})
		cliOpts = append(cliOpts, protocol.WithClientTracing(tracer))
	}
	if *faultPlan != "" {
		plan, err := faults.ParsePlan(*faultPlan)
		if err != nil {
			log.Fatalf("lbsload: -fault-plan: %v", err)
		}
		// One shared dialer so connection indices count across all client
		// connections, in dial order; the resilience counters printed at the
		// end show how the client tier absorbed the injected faults.
		cliOpts = append(cliOpts, protocol.WithDialer(faults.Dialer(plan)))
	}

	if *selfhost {
		// With -trace the self-hosted daemons each get a tracer of their
		// own, exactly as the real binaries would with -trace-sample; the
		// rings are still pulled over the wire, so the merge path below is
		// identical in both modes. Propagated traces obey their sampled
		// flag, so the daemons' own Sample can stay 0.
		var dbTracer, anonTracer *trace.Tracer
		if *traceOn {
			dbTracer = trace.New(trace.Config{Process: "lbsd"})
			anonTracer = trace.New(trace.Config{Process: "anonymizer"})
		}
		dbReg := obs.NewRegistry()
		var dbTierAddr string
		if *routerShards > 1 {
			addr, cleanup := selfhostRouter(world, *routerShards, *queryWorkers, dbReg, dbTracer, quiet)
			defer cleanup()
			dbTierAddr = addr
		} else {
			srv, err := server.New(server.Config{World: world, Metrics: dbReg, QueryWorkers: *queryWorkers, Tracer: dbTracer})
			if err != nil {
				log.Fatalf("lbsload: %v", err)
			}
			dbSvc, err := protocol.ServeDatabase("127.0.0.1:0", srv, quiet, protocol.WithMetrics(dbReg),
				protocol.WithTracing(dbTracer))
			if err != nil {
				log.Fatalf("lbsload: %v", err)
			}
			defer dbSvc.Close()
			dbTierAddr = dbSvc.Addr()
		}
		fwd, err := protocol.DialDatabase(dbTierAddr, protocol.WithCallTimeout(*callTimeout),
			protocol.WithClientTracing(anonTracer))
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		defer fwd.Close()
		anonReg := obs.NewRegistry()
		anon, err := anonymizer.New(anonymizer.Config{
			World: world, Incremental: true, Forward: fwd.UpdatePrivate, Metrics: anonReg,
			Shards: *shards, BatchWorkers: *anonWorkers,
			Tracer: anonTracer, ForwardCtx: fwd.UpdatePrivateCtx,
		})
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		anonSvc, err := protocol.ServeAnonymizer("127.0.0.1:0", anon, quiet, protocol.WithMetrics(anonReg),
			protocol.WithTracing(anonTracer))
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		defer anonSvc.Close()
		*anonAddr = anonSvc.Addr()
		*dbAddr = dbTierAddr
		tier := "single lbsd"
		if *routerShards > 1 {
			tier = fmt.Sprintf("router over %d lbsd shards", *routerShards)
		}
		log.Printf("lbsload: self-hosted stack at anon=%s db=%s (%s, %d anon shards, %d batch workers)",
			*anonAddr, *dbAddr, tier, anon.Shards(), anon.BatchWorkers())
	}

	// Seed the deployment: public objects + registered users.
	setup, err := protocol.DialDatabase(*dbAddr, cliOpts...)
	if err != nil {
		log.Fatalf("lbsload: dial db: %v", err)
	}
	defer setup.Close()
	objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: *objs, World: world, Dist: mobility.Uniform, Seed: *seed + 1,
	})
	if err != nil {
		log.Fatalf("lbsload: %v", err)
	}
	publicObjs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		publicObjs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
	}
	if err := setup.LoadStationary(publicObjs); err != nil {
		log.Fatalf("lbsload: load objects: %v", err)
	}

	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: *users, World: world, Dist: mobility.Gaussian, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("lbsload: %v", err)
	}
	reg, err := protocol.DialAnonymizer(*anonAddr, cliOpts...)
	if err != nil {
		log.Fatalf("lbsload: dial anonymizer: %v", err)
	}
	prof := privacy.Constant(privacy.Requirement{K: *k})
	t0 := time.Now()
	for i, p := range userPts {
		id := uint64(i + 1)
		if err := reg.Register(id, prof); err != nil {
			log.Fatalf("lbsload: register %d: %v", id, err)
		}
		if _, err := reg.Update(id, p); err != nil {
			log.Fatalf("lbsload: seed update %d: %v", id, err)
		}
	}
	reg.Close()
	log.Printf("lbsload: seeded %d users, %d objects in %v", *users, *objs,
		time.Since(t0).Round(time.Millisecond))

	// Baselines for the -check gate, taken after seeding: a fresh city's
	// first cloaks cannot find k neighbors, so seed-phase k misses are
	// warmup, not violations.
	var baseDrops, baseKMissed float64
	checkArmed := false
	if *check {
		var cerr error
		baseDrops, baseKMissed, cerr = safetyCounters(*anonAddr)
		if cerr != nil {
			log.Printf("lbsload: -check disabled, anonymizer metrics unavailable (uninstrumented peer?): %v", cerr)
		} else {
			checkArmed = true
		}
	}

	// Closed-loop user workers (updates + private NN queries) and one
	// admin worker (counts + public NN).
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		updateLat stats.Latencies
		queryLat  stats.Latencies
		adminLat  stats.Latencies
		errCount  atomic.Uint64
		opCount   atomic.Uint64
	)

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := protocol.DialAnonymizer(*anonAddr, cliOpts...)
			if err != nil {
				log.Printf("lbsload: worker %d: %v", w, err)
				return
			}
			defer conn.Close()
			db, err := protocol.DialDatabase(*dbAddr, cliOpts...)
			if err != nil {
				log.Printf("lbsload: worker %d: %v", w, err)
				return
			}
			defer db.Close()
			src := rng.New(*seed + uint64(w)*7919)
			var myUpd, myQry stats.Latencies
			for !stop.Load() {
				id := uint64(src.Intn(*users)) + 1
				loc := world.ClampPoint(geo.Pt(
					userPts[id-1].X+src.Range(-0.01, 0.01),
					userPts[id-1].Y+src.Range(-0.01, 0.01),
				))
				if src.Intn(100) < *queryPct {
					ctx, root := spanCtx(tracer.StartRoot("load_private_query"))
					t := time.Now()
					res, err := conn.CloakQueryCtx(ctx, id, loc)
					if err == nil {
						var nn server.PrivateNNResult
						nn, err = db.PrivateNNCtx(ctx, server.PrivateNNQuery{Region: res.Region, Class: "poi"})
						if err == nil {
							server.RefineNN(loc, nn.Candidates)
						}
					}
					root.End()
					if err != nil {
						errCount.Add(1)
					} else {
						myQry.Add(time.Since(t))
					}
				} else if *batch > 1 {
					reqs := make([]cloak.Request, *batch)
					for b := range reqs {
						bid := uint64(src.Intn(*users)) + 1
						reqs[b] = cloak.Request{ID: bid, Loc: world.ClampPoint(geo.Pt(
							userPts[bid-1].X+src.Range(-0.01, 0.01),
							userPts[bid-1].Y+src.Range(-0.01, 0.01),
						))}
					}
					ctx, root := spanCtx(tracer.StartRoot("load_batch_update"))
					t := time.Now()
					if _, err := conn.BatchUpdateCtx(ctx, reqs); err != nil {
						errCount.Add(1)
					} else {
						myUpd.Add(time.Since(t))
					}
					root.End()
					opCount.Add(uint64(*batch) - 1)
				} else {
					ctx, root := spanCtx(tracer.StartRoot("load_update"))
					t := time.Now()
					if _, err := conn.UpdateCtx(ctx, id, loc); err != nil {
						errCount.Add(1)
					} else {
						myUpd.Add(time.Since(t))
					}
					root.End()
				}
				opCount.Add(1)
			}
			mu.Lock()
			updateLat.Merge(&myUpd)
			queryLat.Merge(&myQry)
			mu.Unlock()
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		db, err := protocol.DialDatabase(*dbAddr, cliOpts...)
		if err != nil {
			log.Printf("lbsload: admin worker: %v", err)
			return
		}
		defer db.Close()
		src := rng.New(*seed + 424242)
		var my stats.Latencies
		for !stop.Load() {
			if *queryBatch > 1 {
				// Mixed batch clustered around one center so the server's
				// shared-execution engine actually merges descents.
				c := geo.Pt(src.Range(0.15, 0.85), src.Range(0.15, 0.85))
				entries := make([]server.BatchEntry, *queryBatch)
				for i := range entries {
					p := world.ClampPoint(geo.Pt(c.X+src.Range(-0.08, 0.08), c.Y+src.Range(-0.08, 0.08)))
					r := geo.RectAround(p, 0.02+0.06*src.Float64()).Clip(world)
					switch src.Intn(3) {
					case 0:
						entries[i] = server.BatchEntry{Kind: server.BatchPrivateRange,
							Range: server.PrivateRangeQuery{Region: r, Radius: 0.03 * src.Float64(), Class: "poi"}}
					case 1:
						entries[i] = server.BatchEntry{Kind: server.BatchPrivateNN,
							NN: server.PrivateNNQuery{Region: r, Class: "poi"}}
					default:
						entries[i] = server.BatchEntry{Kind: server.BatchPublicCount,
							Count: server.PublicRangeCountQuery{Query: r}}
					}
				}
				ctx, root := spanCtx(tracer.StartRoot("load_admin_batch"))
				t := time.Now()
				if _, err := db.BatchQueryCtx(ctx, entries); err != nil {
					errCount.Add(1)
				} else {
					my.Add(time.Since(t))
				}
				root.End()
				opCount.Add(uint64(*queryBatch))
				continue
			}
			ctx, root := spanCtx(tracer.StartRoot("load_admin_count"))
			t := time.Now()
			c := geo.Pt(src.Range(0.1, 0.9), src.Range(0.1, 0.9))
			if _, err := db.PublicCountCtx(ctx, geo.RectAround(c, 0.1).Clip(world)); err != nil {
				errCount.Add(1)
			} else {
				my.Add(time.Since(t))
			}
			root.End()
			opCount.Add(1)
		}
		mu.Lock()
		adminLat.Merge(&my)
		mu.Unlock()
	}()

	log.Printf("lbsload: running %d+1 workers for %v ...", *workers, *duration)
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	total := opCount.Load()
	fmt.Printf("\nresults over %v (%d workers + 1 admin):\n", *duration, *workers)
	fmt.Printf("  throughput : %.0f ops/sec (%d ops, %d errors)\n",
		float64(total)/duration.Seconds(), total, errCount.Load())
	if *batch > 1 {
		fmt.Printf("  updates    : batches of %d — %s\n", *batch, updateLat.Summary())
	} else {
		fmt.Printf("  updates    : %s\n", updateLat.Summary())
	}
	fmt.Printf("  NN queries : %s\n", queryLat.Summary())
	if *queryBatch > 1 {
		fmt.Printf("  admin batch: batches of %d — %s\n", *queryBatch, adminLat.Summary())
	} else {
		fmt.Printf("  admin count: %s\n", adminLat.Summary())
	}
	// Read-only lookups of the counters WithClientMetrics registered; Find
	// neither registers nor takes ownership of the proto_* namespace.
	counterVal := func(name string) float64 {
		s, _ := cliReg.Find(name)
		return s.Value
	}
	fmt.Printf("  resilience : %.0f retries, %.0f timeouts, %.0f reconnects, %.0f breaker opens\n",
		counterVal("proto_retries_total"),
		counterVal("proto_call_timeouts_total"),
		counterVal("proto_reconnects_total"),
		counterVal("proto_breaker_opens_total"))

	// Daemon-side percentile tables over the wire.
	if ac, err := protocol.DialAnonymizer(*anonAddr, protocol.WithCallTimeout(5*time.Second)); err == nil {
		series, merr := ac.Metrics()
		printLiveMetrics("anonymizer", series, merr)
		ac.Close()
	}
	if dc, err := protocol.DialDatabase(*dbAddr, protocol.WithCallTimeout(5*time.Second)); err == nil {
		series, merr := dc.Metrics()
		printLiveMetrics("database", series, merr)
		dc.Close()
	}

	if tracer != nil {
		dumpTraces(tracer, *anonAddr, *dbAddr, *traceOut)
	}

	if checkArmed {
		drops, kMissed, cerr := safetyCounters(*anonAddr)
		if cerr != nil {
			log.Fatalf("lbsload: -check: final metrics read failed: %v", cerr)
		}
		lost := drops - baseDrops
		kViol := kMissed - baseKMissed
		if lost > 0 || kViol > 0 {
			fmt.Printf("\nCHECK FAILED: %.0f acked updates evicted (anon_forward_queue_drops_total), %.0f post-seed cloaks missed k (anon_cloak_k_missed_total)\n", lost, kViol)
			os.Exit(1)
		}
		fmt.Printf("\ncheck ok: zero lost updates, zero post-seed k violations\n")
	}
}

// selfhostRouter boots the routed database tier for -selfhost -router N:
// N lbsd shards on loopback (each with a private registry, so per-service
// series don't collide) behind a routing service that carries the shared
// registry and tracer — the address it returns answers MsgMetrics and
// MsgSpans exactly as a single lbsd would, so every table and trace merge
// below works unchanged.
func selfhostRouter(world geo.Rect, shards, queryWorkers int, reg *obs.Registry, tracer *trace.Tracer,
	quiet func(string, ...interface{})) (string, func()) {
	var (
		svcs  []*protocol.Service
		conns []*protocol.DatabaseClient
		links []router.Shard
		addrs []string
	)
	for i := 0; i < shards; i++ {
		srv, err := server.New(server.Config{World: world, Metrics: obs.NewRegistry(), QueryWorkers: queryWorkers})
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		svc, err := protocol.ServeDatabase("127.0.0.1:0", srv, quiet)
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		svcs = append(svcs, svc)
		addrs = append(addrs, svc.Addr())
		link, err := protocol.DialDatabase(svc.Addr(),
			protocol.WithLazyDial(),
			protocol.WithCallTimeout(10*time.Second),
			protocol.WithClientMetrics(reg),
			protocol.WithClientTracing(tracer))
		if err != nil {
			log.Fatalf("lbsload: %v", err)
		}
		conns = append(conns, link)
		links = append(links, link)
	}
	rt, err := router.New(router.Config{World: world, Shards: links, Addrs: addrs, Metrics: reg, Tracer: tracer})
	if err != nil {
		log.Fatalf("lbsload: %v", err)
	}
	rtSvc, err := protocol.ServeRouter("127.0.0.1:0", rt, quiet,
		protocol.WithMetrics(reg), protocol.WithTracing(tracer))
	if err != nil {
		log.Fatalf("lbsload: %v", err)
	}
	return rtSvc.Addr(), func() {
		rtSvc.Close()
		for _, c := range conns {
			c.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	}
}

// dumpTraces pulls the span rings of both daemons over the wire, merges
// them with the load tool's own ring into one cross-process timeline,
// writes it as Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing), and prints a self-time attribution for the slowest
// traces still fully resident in the rings.
func dumpTraces(tracer *trace.Tracer, anonAddr, dbAddr, out string) {
	groups := [][]trace.SpanRecord{tracer.Snapshot()}
	if ac, err := protocol.DialAnonymizer(anonAddr, protocol.WithCallTimeout(5*time.Second)); err == nil {
		if spans, terr := ac.Traces(); terr == nil {
			groups = append(groups, spans)
		} else {
			log.Printf("lbsload: anonymizer traces unavailable (started without -trace-sample?): %v", terr)
		}
		ac.Close()
	}
	if dc, err := protocol.DialDatabase(dbAddr, protocol.WithCallTimeout(5*time.Second)); err == nil {
		if spans, terr := dc.Traces(); terr == nil {
			groups = append(groups, spans)
		} else {
			log.Printf("lbsload: database traces unavailable (started without -trace-sample?): %v", terr)
		}
		dc.Close()
	}
	merged := trace.Merge(groups...)
	if len(merged) == 0 {
		log.Printf("lbsload: no spans captured")
		return
	}
	f, err := os.Create(out)
	if err != nil {
		log.Printf("lbsload: %v", err)
		return
	}
	if err := trace.WriteChromeJSON(f, merged); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		log.Printf("lbsload: write %s: %v", out, err)
		return
	}
	fmt.Printf("\n%d spans merged into %s (open in Perfetto / chrome://tracing)\n", len(merged), out)
	sums := trace.Summarize(merged)
	if len(sums) > 5 {
		sums = sums[:5]
	}
	fmt.Printf("slowest traces (self-time attribution per proc/stage):\n")
	for _, s := range sums {
		fmt.Printf("  trace %016x  %s  %v  (%d spans)\n",
			s.TraceID, s.Root.Name, time.Duration(s.Root.Dur).Round(time.Microsecond), s.Spans)
		type kv struct {
			stage string
			d     time.Duration
		}
		parts := make([]kv, 0, len(s.Self))
		for stage, d := range s.Self {
			parts = append(parts, kv{stage, d})
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].d > parts[j].d })
		for i, p := range parts {
			if i == 4 {
				break
			}
			fmt.Printf("    %-36s %v\n", p.stage, p.d.Round(time.Microsecond))
		}
	}
}
