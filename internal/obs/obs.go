// Package obs is the observability layer shared by every tier of the
// deployment: lock-free counters, gauges and fixed-bucket latency
// histograms behind a named-metric registry, with Prometheus text
// exposition and an operational HTTP endpoint (/metrics, /healthz,
// net/http/pprof).
//
// Design constraints, in order:
//
//   - Hot-path cost must be a handful of atomic operations — the anonymizer
//     and database server record a sample on every update and query, and
//     the Section 5.3 goal is scaling to a large mobile population.
//   - Snapshots must be mergeable, so per-daemon histograms can travel over
//     the wire protocol and be combined by the load tools.
//   - Quantiles must use the same definition everywhere: the nearest-rank
//     rule promoted from internal/stats lives here as Rank, and both the
//     in-memory sample collector and the bucketed histograms derive their
//     percentiles from it.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (population sizes, active
// connections, hit rates). The zero value is ready to use; all methods are
// safe for concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (possibly negative) with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Rank returns the 0-based index of the p-th percentile (p in [0,100]) in a
// sorted set of n samples under the nearest-rank rule — the quantile
// definition previously private to internal/stats, promoted here so the
// bench tools and the runtime histograms report identical percentiles.
// It returns 0 for n <= 0.
func Rank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 100 {
		return n - 1
	}
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}
