// Package repro is a from-scratch Go reproduction of "Towards
// Privacy-Aware Location-Based Database Servers" (Mokbel, ICDE Workshops
// 2006): a Location Anonymizer that blurs exact user locations into
// k-anonymous cloaked regions under per-user temporal privacy profiles, and
// a privacy-aware location-based database server that answers private
// queries over public data and public queries over private data with
// candidate sets and probabilistic answers.
//
// The implementation lives under internal/:
//
//   - core — the assembled three-tier system (start here);
//   - anonymizer, cloak, privacy, attack — the trusted third party, the
//     four cloaking algorithms of Figures 3–4, profiles, and the
//     reverse-engineering adversaries;
//   - server, prob — the privacy-aware query processors of Figures 5–6;
//   - rtree, grid, pyramid, geo, rng, mobility — the substrates;
//   - protocol — the wire protocol and TCP services of Figure 1.
//
// Runnable entry points: examples/* (five scenarios), cmd/lbsbench (the
// experiment harness behind EXPERIMENTS.md), cmd/anonymizerd and cmd/lbsd
// (the networked deployment), and cmd/lbsgen (workload traces). The
// benchmarks in bench_test.go mirror the experiment suite one-to-one.
package repro
