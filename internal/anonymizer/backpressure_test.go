package anonymizer

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
)

func newBackpressureAnon(t *testing.T, fwd Forwarder, queue int) *Anonymizer {
	t.Helper()
	a, err := New(Config{
		World:               geo.R(0, 0, 1, 1),
		Forward:             fwd,
		ForwardQueue:        queue,
		ForwardBackpressure: true,
		ForwardRetryBase:    5 * time.Millisecond,
		ForwardRetryMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

// fillQueue drives the queue to its bound with one region per distinct
// user, with the link down.
func fillQueue(t *testing.T, a *Anonymizer, n int) {
	t.Helper()
	for id := uint64(1); id <= uint64(n); id++ {
		if _, err := a.Update(id, geo.Pt(float64(id)/16, 0.5)); err != nil {
			t.Fatalf("update %d while filling queue: %v", id, err)
		}
	}
}

// Under backpressure a full queue refuses new users' regions with a typed
// error instead of silently evicting the oldest entry.
func TestBackpressureRejectsInsteadOfEvicting(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newBackpressureAnon(t, fwd.forward, 4)
	registerN(t, a, 8, 2)

	fwd.setDown(true)
	fillQueue(t, a, 4)

	_, err := a.Update(5, geo.Pt(0.9, 0.9))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("update into a full queue: err = %v, want ErrOverloaded", err)
	}
	st := a.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 — backpressure must not evict", st.Dropped)
	}
	if st.QueueDepth != 4 {
		t.Fatalf("QueueDepth = %d, want 4", st.QueueDepth)
	}
	if got := a.met.sheds.Value(); got == 0 {
		t.Fatal("anon_overload_sheds_total = 0, want > 0")
	}
	if !a.Saturated() {
		t.Fatal("Saturated() = false with a full queue in reject mode")
	}
}

// A user who already holds a queued entry coalesces even when the queue is
// full: backpressure only refuses work that would need a new slot.
func TestBackpressureCoalesceStillSucceeds(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newBackpressureAnon(t, fwd.forward, 3)
	registerN(t, a, 6, 2)

	fwd.setDown(true)
	fillQueue(t, a, 3)

	if _, err := a.Update(2, geo.Pt(0.7, 0.7)); err != nil {
		t.Fatalf("coalescing update for a queued user failed: %v", err)
	}
	st := a.Stats()
	if st.QueueDepth != 3 {
		t.Fatalf("QueueDepth = %d, want 3 (coalesced, not grown)", st.QueueDepth)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", st.Dropped)
	}
}

// Once the link recovers and the queue drains, previously refused users are
// admitted again — backpressure is a transient, not a ban.
func TestBackpressureRecoversAfterDrain(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newBackpressureAnon(t, fwd.forward, 2)
	registerN(t, a, 6, 2)

	fwd.setDown(true)
	fillQueue(t, a, 2)
	if _, err := a.Update(3, geo.Pt(0.8, 0.2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded while saturated", err)
	}

	fwd.setDown(false)
	waitFor(t, 5*time.Second, func() bool { return a.Stats().QueueDepth == 0 }, "queue drain")
	if _, err := a.Update(3, geo.Pt(0.8, 0.2)); err != nil {
		t.Fatalf("update after drain failed: %v", err)
	}
	if a.Saturated() {
		t.Fatal("Saturated() = true after the queue drained")
	}
}

// BatchUpdate under backpressure sheds exactly the entries the full queue
// cannot hold: their results come back nil, admitted users still land, and
// nothing is evicted.
func TestBatchUpdateShedsUnderBackpressure(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newBackpressureAnon(t, fwd.forward, 2)
	registerN(t, a, 8, 2)

	fwd.setDown(true)
	fillQueue(t, a, 2) // users 1 and 2 occupy the queue

	batch := []cloak.Request{
		{ID: 1, Loc: geo.Pt(0.15, 0.5)}, // queued → coalesces, succeeds
		{ID: 5, Loc: geo.Pt(0.55, 0.5)}, // new user, no slot → shed
		{ID: 6, Loc: geo.Pt(0.65, 0.5)}, // new user, no slot → shed
	}
	results := a.BatchUpdate(batch)
	if results[0] == nil {
		t.Fatal("coalescing batch entry for a queued user was shed")
	}
	if results[1] != nil || results[2] != nil {
		t.Fatalf("non-admissible entries returned results %v, %v — want nil, nil",
			results[1], results[2])
	}
	st := a.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 — batch sheds must not evict", st.Dropped)
	}
	if st.QueueDepth != 2 {
		t.Fatalf("QueueDepth = %d, want 2", st.QueueDepth)
	}
	if got := a.met.sheds.Value(); got < 2 {
		t.Fatalf("anon_overload_sheds_total = %d, want >= 2", got)
	}
}

// Without the flag the historical evict-oldest policy is untouched:
// updates never fail, the oldest entry pays.
func TestEvictModeUnchangedWithoutFlag(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 2)
	registerN(t, a, 5, 2)

	fwd.setDown(true)
	for id := uint64(1); id <= 5; id++ {
		if _, err := a.Update(id, geo.Pt(float64(id)/6, 0.5)); err != nil {
			t.Fatalf("update %d failed in evict mode: %v", id, err)
		}
	}
	if a.Saturated() {
		t.Fatal("Saturated() = true in evict mode — backpressure off must never report saturation")
	}
	if st := a.Stats(); st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", st.Dropped)
	}
}
