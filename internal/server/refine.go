package server

import (
	"math"
	"sort"

	"repro/internal/geo"
)

// The refinement step runs on the mobile user's device (Section 6.2.1): the
// server returns a candidate list computed from the cloaked region, and the
// client — which knows its own exact location — filters the candidates
// locally. The functions here are pure and allocation-light, matching the
// paper's "limited computation and storage capability of mobile users".

// RefineRange returns the candidates actually within radius of the exact
// location, sorted by increasing distance — the final answer of a private
// range query.
func RefineRange(exact geo.Point, radius float64, candidates []PublicObject) []PublicObject {
	r2 := radius * radius
	out := make([]PublicObject, 0, len(candidates))
	for _, c := range candidates {
		if exact.Dist2(c.Loc) <= r2 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := exact.Dist2(out[i].Loc), exact.Dist2(out[j].Loc)
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RefineNN returns the candidate nearest to the exact location — the final
// answer of a private nearest-neighbor query — and false when the candidate
// list is empty. Distance ties break toward the lower ID so refinement is
// deterministic.
func RefineNN(exact geo.Point, candidates []PublicObject) (PublicObject, bool) {
	if len(candidates) == 0 {
		return PublicObject{}, false
	}
	best := candidates[0]
	bestD := exact.Dist2(best.Loc)
	for _, c := range candidates[1:] {
		d := exact.Dist2(c.Loc)
		if d < bestD || (d == bestD && c.ID < best.ID) {
			best, bestD = c, d
		}
	}
	return best, true
}

// RefineKNN returns the k candidates nearest to the exact location in
// increasing distance order (fewer when the list is shorter).
func RefineKNN(exact geo.Point, k int, candidates []PublicObject) []PublicObject {
	if k <= 0 {
		return nil
	}
	out := append([]PublicObject(nil), candidates...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := exact.Dist2(out[i].Loc), exact.Dist2(out[j].Loc)
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TransmissionCost estimates the answer-transfer cost of a candidate list
// in bytes, the quality-of-service proxy of experiment E4/E5 (each object:
// id + two float64 coordinates + a small class tag).
func TransmissionCost(candidates []PublicObject) int {
	cost := 0
	for _, c := range candidates {
		cost += 8 + 16 + len(c.Class)
	}
	return cost
}

// CandidateCompleteness verifies invariant I6 empirically: it samples an
// n×n lattice of positions inside the region, computes the true nearest
// object by brute force over all objects, and reports whether every true
// nearest neighbor appears in the candidate set. Tests and experiments use
// it as ground truth; it is O(n²·|all|) and not meant for production paths.
func CandidateCompleteness(region geo.Rect, n int, candidates, all []PublicObject) bool {
	if n < 2 {
		n = 2
	}
	inCand := make(map[uint64]bool, len(candidates))
	for _, c := range candidates {
		inCand[c.ID] = true
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geo.Pt(
				region.Min.X+region.Width()*float64(i)/float64(n-1),
				region.Min.Y+region.Height()*float64(j)/float64(n-1),
			)
			bestID := uint64(0)
			bestD := math.Inf(1)
			for _, o := range all {
				if d := p.Dist2(o.Loc); d < bestD {
					bestD, bestID = d, o.ID
				}
			}
			if bestID != 0 && !inCand[bestID] {
				return false
			}
		}
	}
	return true
}
