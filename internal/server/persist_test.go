package server

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// buildLoadedServer populates a server with all kinds of state.
func buildLoadedServer(t *testing.T) *Server {
	t.Helper()
	s := newServer(t)
	loadObjects(t, s, 500, "gas", 1)
	src := rng.New(2)
	for i := 0; i < 200; i++ {
		if err := s.UpdateMoving(uint64(i+1), geo.Pt(src.Float64(), src.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		if err := s.UpdatePrivate(uint64(i+1), geo.RectAround(c, 0.03).Clip(world)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RegisterContinuousCount(geo.R(0.2, 0.2, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterContinuousCount(geo.R(0.5, 0.1, 0.9, 0.4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterContinuousPrivateRange(geo.R(0.4, 0.4, 0.5, 0.5), 0.05); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	orig := buildLoadedServer(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := newServer(t)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if restored.StationaryCount() != orig.StationaryCount() {
		t.Errorf("stationary: %d vs %d", restored.StationaryCount(), orig.StationaryCount())
	}
	if restored.MovingCount() != orig.MovingCount() {
		t.Errorf("moving: %d vs %d", restored.MovingCount(), orig.MovingCount())
	}
	if restored.PrivateUserCount() != orig.PrivateUserCount() {
		t.Errorf("private: %d vs %d", restored.PrivateUserCount(), orig.PrivateUserCount())
	}
	if restored.ContinuousQueryCount() != orig.ContinuousQueryCount() {
		t.Errorf("cont queries: %d vs %d", restored.ContinuousQueryCount(), orig.ContinuousQueryCount())
	}
	if restored.ContinuousPrivateQueryCount() != orig.ContinuousPrivateQueryCount() {
		t.Errorf("cont private queries: %d vs %d",
			restored.ContinuousPrivateQueryCount(), orig.ContinuousPrivateQueryCount())
	}

	// Every private region survives byte-exact.
	for _, rec := range orig.privateSnapshot() {
		got, ok := restored.PrivateRegion(rec.ID)
		if !ok || !got.Eq(rec.Region) {
			t.Fatalf("private region %d lost or changed", rec.ID)
		}
	}

	// Queries answer identically.
	q := PrivateRangeQuery{Region: geo.R(0.4, 0.4, 0.5, 0.5), Radius: 0.08, Class: "gas"}
	a, err := orig.PrivateRange(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.PrivateRange(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("private range answers differ: %d vs %d", len(a), len(b))
	}
	ca, _ := orig.PublicRangeCount(PublicRangeCountQuery{Query: geo.R(0.3, 0.3, 0.7, 0.7)})
	cb, _ := restored.PublicRangeCount(PublicRangeCountQuery{Query: geo.R(0.3, 0.3, 0.7, 0.7)})
	if math.Abs(ca.Answer.Expected-cb.Answer.Expected) > 1e-9 ||
		ca.Answer.Lo != cb.Answer.Lo || ca.Answer.Hi != cb.Answer.Hi {
		t.Fatalf("public count differs: %+v vs %+v", ca.Answer, cb.Answer)
	}

	// Continuous count answers were rebuilt and match fresh evaluation.
	for id := uint64(1); id <= 2; id++ {
		ans, ok := restored.ContinuousCount(id)
		if !ok {
			t.Fatalf("continuous query %d missing after restore", id)
		}
		orig, _ := orig.ContinuousCount(id)
		if math.Abs(ans.Expected-orig.Expected) > 1e-9 || ans.Lo != orig.Lo || ans.Hi != orig.Hi {
			t.Fatalf("continuous answer differs: %+v vs %+v", ans, orig)
		}
	}

	// The restored server remains fully functional: updates feed the
	// rebuilt continuous engines.
	preAns, _ := restored.ContinuousCount(1)
	if err := restored.UpdatePrivate(9999, geo.R(0.3, 0.3, 0.4, 0.4)); err != nil {
		t.Fatal(err)
	}
	postAns, _ := restored.ContinuousCount(1)
	if postAns.Expected <= preAns.Expected {
		t.Error("restored continuous engine did not see the new user")
	}
}

func TestSnapshotDeterministicState(t *testing.T) {
	// Two servers built identically produce snapshots that restore to the
	// same query answers (byte equality is not required — map iteration
	// varies — but semantic equality is).
	a := buildLoadedServer(t)
	var bufA bytes.Buffer
	if err := a.Snapshot(&bufA); err != nil {
		t.Fatal(err)
	}
	restored := newServer(t)
	if err := restored.Restore(bytes.NewReader(bufA.Bytes())); err != nil {
		t.Fatal(err)
	}
	var bufB bytes.Buffer
	if err := restored.Snapshot(&bufB); err != nil {
		t.Fatal(err)
	}
	// Snapshot of the restored server has the same length (same content up
	// to map ordering).
	if bufA.Len() != bufB.Len() {
		t.Errorf("second-generation snapshot size %d != %d", bufB.Len(), bufA.Len())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := newServer(t)
	if err := s.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
	if err := s.Restore(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Bad version.
	bad := append([]byte("PALB"), 0xff, 0xff)
	if err := s.Restore(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated stream.
	orig := buildLoadedServer(t)
	var buf bytes.Buffer
	orig.Snapshot(&buf)
	if err := s.Restore(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// The failed restores left the server empty and usable.
	if s.StationaryCount() != 0 || s.PrivateUserCount() != 0 {
		t.Error("failed restore mutated server state")
	}
	if err := s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.2, 0.2)); err != nil {
		t.Errorf("server unusable after failed restore: %v", err)
	}
}

func TestRestoreRejectsOutOfWorldData(t *testing.T) {
	// Snapshot from a larger world cannot restore into a smaller one.
	big, err := New(Config{World: geo.R(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.AddStationary(PublicObject{ID: 1, Class: "gas", Loc: geo.Pt(5, 5)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := big.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	small := newServer(t)
	if err := small.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("out-of-world snapshot accepted")
	}
}

// A torn (half-written) snapshot — as a crash mid-write would leave
// without the atomic rename — is rejected by Restore at every truncation
// point, with an error and no state change.
func TestRestoreRejectsTornSnapshot(t *testing.T) {
	orig := buildLoadedServer(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Sweep truncation points across the whole stream, plus the tightest
	// interesting prefixes around the header.
	cuts := []int{0, 1, 3, 4, 5, 6, 7, 9}
	for c := 10; c < len(full); c += len(full)/97 + 1 {
		cuts = append(cuts, c)
	}
	for _, c := range cuts {
		s := newServer(t)
		err := s.Restore(bytes.NewReader(full[:c]))
		if err == nil {
			t.Fatalf("torn snapshot of %d/%d bytes accepted", c, len(full))
		}
		if s.StationaryCount() != 0 || s.PrivateUserCount() != 0 {
			t.Fatalf("torn snapshot of %d bytes mutated server state", c)
		}
	}
}

// SaveSnapshot is atomic: the target is only ever a complete snapshot, no
// temp files are left behind, and a failed save preserves the old file.
func TestSaveSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	orig := buildLoadedServer(t)
	if err := orig.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	restored := newServer(t)
	if err := restored.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if restored.PrivateUserCount() != orig.PrivateUserCount() {
		t.Fatalf("private users: %d vs %d", restored.PrivateUserCount(), orig.PrivateUserCount())
	}

	// Overwriting an existing snapshot also works and leaves exactly one
	// file in the directory — no .tmp residue.
	if err := orig.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after save: %v", names)
	}

	// A save into an unwritable directory fails without touching the old
	// snapshot.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveSnapshot(filepath.Join(dir, "missing-subdir", "state.snap")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save mutated the existing snapshot")
	}
}

// LoadSnapshot surfaces a missing file as os.IsNotExist so daemons can
// treat first boot as empty state.
func TestLoadSnapshotMissingFile(t *testing.T) {
	s := newServer(t)
	err := s.LoadSnapshot(filepath.Join(t.TempDir(), "absent.snap"))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want os.IsNotExist", err)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	s, err := New(Config{World: world})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 10000; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		s.UpdatePrivate(uint64(i+1), geo.RectAround(c, 0.02).Clip(world))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
