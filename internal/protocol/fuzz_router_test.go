package protocol

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/router"
	"repro/internal/server"
)

// Fuzz targets for the routing tier's decoders: the shard-map frame and
// the forwarded sub-batch frames (sub-queries shard-bound, sub-results
// router-bound). Same contract as the rest of the wire fuzzers —
// malformed input errors out, never panics or over-allocates, and
// well-formed input round-trips.

func shardMapSeed() router.Topology {
	return router.Topology{
		World:  geo.R(0, 0, 1, 1),
		Cols:   2,
		Rows:   2,
		Shards: 2,
		Addrs:  []string{"127.0.0.1:7101", "127.0.0.1:7102"},
		Owners: []int{0, 1, 1, 0},
	}
}

func FuzzDecodeShardMap(f *testing.F) {
	f.Add(encodeShardMap(shardMapSeed()))
	f.Add([]byte{})
	f.Add(make([]byte, 44)) // zero grid
	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := decodeShardMap(NewDecoder(data))
		if err != nil {
			return
		}
		// Accepted maps are internally consistent: the owner table covers
		// the grid and every owner names a declared shard.
		if len(topo.Owners) != topo.Cols*topo.Rows {
			t.Fatalf("%d owners for a %dx%d grid", len(topo.Owners), topo.Cols, topo.Rows)
		}
		if len(topo.Addrs) != topo.Shards {
			t.Fatalf("%d addrs for %d shards", len(topo.Addrs), topo.Shards)
		}
		for tile, o := range topo.Owners {
			if o < 0 || o >= topo.Shards {
				t.Fatalf("tile %d owned by out-of-range shard %d", tile, o)
			}
		}
		// Round trip.
		again, err := decodeShardMap(NewDecoder(encodeShardMap(topo)))
		if err != nil {
			t.Fatalf("re-decode of re-encoded shard map failed: %v", err)
		}
		if len(again.Owners) != len(topo.Owners) {
			t.Fatalf("round trip changed owner count: %d vs %d", len(again.Owners), len(topo.Owners))
		}
	})
}

func subQuerySeed() []byte {
	var e Encoder
	encodeSubQueries(&e, []router.SubQuery{
		{Index: 0, Entry: server.BatchEntry{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{
			Region: geo.R(0.1, 0.1, 0.3, 0.3), Radius: 0.05, Class: "gas",
		}}},
		{Index: 2, Entry: server.BatchEntry{Kind: server.BatchPrivateNN, NN: server.PrivateNNQuery{
			Region: geo.R(0.4, 0.4, 0.5, 0.5),
		}}},
		{Index: 3, Entry: server.BatchEntry{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{
			Query: geo.R(0, 0, 1, 1),
		}}},
	})
	return e.Bytes()
}

func FuzzDecodeSubQueries(f *testing.F) {
	f.Add(subQuerySeed())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no entries
	f.Fuzz(func(t *testing.T, data []byte) {
		subs, err := decodeSubQueries(NewDecoder(data))
		if err != nil {
			return
		}
		// No over-allocation: each sub-query consumed at least its minimum
		// wire size.
		if len(subs)*37 > len(data) {
			t.Fatalf("%d sub-queries from %d input bytes", len(subs), len(data))
		}
		// Round trip: decoded sub-queries re-encode to the consumed prefix.
		var e Encoder
		encodeSubQueries(&e, subs)
		if _, err := decodeSubQueries(NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded sub-queries failed: %v", err)
		}
	})
}

func subResultSeed() []byte {
	return encodeSubResults([]router.SubResult{
		{Index: 0, Kind: server.BatchPrivateRange, Range: []server.PublicObject{
			{ID: 9, Class: "gas", Loc: geo.Pt(0.2, 0.2)},
		}},
		{Index: 1, Err: "server: invalid radius -1"},
		{Index: 2, Kind: server.BatchPrivateNN, NN: server.NNParts{Bound: 0.25, Candidates: []server.PublicObject{
			{ID: 4, Class: "bank", Loc: geo.Pt(0.41, 0.44)},
		}}},
		{Index: 3, Kind: server.BatchPublicCount, Count: []server.UserProb{{ID: 7, P: 0.5}}},
	})
}

func FuzzDecodeSubResults(f *testing.F) {
	f.Add(subResultSeed())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no entries
	f.Fuzz(func(t *testing.T, data []byte) {
		results, err := decodeSubResults(NewDecoder(data))
		if err != nil {
			return
		}
		// No over-allocation: each sub-result consumed at least its status
		// prefix.
		if len(results)*6 > len(data) {
			t.Fatalf("%d sub-results from %d input bytes", len(results), len(data))
		}
		for i, sr := range results {
			if sr.Err == "" {
				switch sr.Kind {
				case server.BatchPrivateRange, server.BatchPrivateNN, server.BatchPublicCount:
				default:
					t.Fatalf("sub-result %d accepted with unknown kind %d", i, byte(sr.Kind))
				}
			}
		}
		// Round trip.
		if _, err := decodeSubResults(NewDecoder(encodeSubResults(results))); err != nil {
			t.Fatalf("re-decode of re-encoded sub-results failed: %v", err)
		}
	})
}
