package lockorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/lockorder"
)

func TestOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis")
	}
	linttest.Run(t, "testdata/src/order", lockorder.Analyzer)
}
