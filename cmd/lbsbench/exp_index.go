package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/server"
)

// expRegionIndex (E15) measures the server's region index against the full
// scan for range-shaped public queries across selectivities, and the batch
// anonymizer path against per-user updates — the two production
// optimizations layered on top of the paper's design.
func expRegionIndex(cfg benchConfig) {
	// Part 1: indexed public counts vs full scan.
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	q := &cloak.Quadtree{Pyr: p.pyr}
	for i, loc := range p.pts {
		res := q.Cloak(uint64(i+1), loc, reqK(50))
		if err := srv.UpdatePrivate(uint64(i+1), res.Region); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
	fmt.Printf("%d cloaked users (k=50); 200 queries per row\n\n", cfg.n)
	t := newTable("query side", "mean matches", "indexed", "full scan", "speedup")
	src := rng.New(cfg.seed + 500)
	for _, side := range []float64{0.02, 0.05, 0.15, 0.4} {
		queries := make([]server.PublicRangeCountQuery, 200)
		for i := range queries {
			c := geo.Pt(src.Range(side/2, 1-side/2), src.Range(side/2, 1-side/2))
			queries[i] = server.PublicRangeCountQuery{Query: geo.RectAround(c, side/2)}
		}
		var matches int
		t0 := time.Now()
		for _, qq := range queries {
			res, err := srv.PublicRangeCount(qq)
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			matches += res.NaiveCount
		}
		indexed := time.Since(t0) / time.Duration(len(queries))

		t0 = time.Now()
		for _, qq := range queries {
			if _, err := srv.PublicRangeCountScanForBench(qq); err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
		}
		scan := time.Since(t0) / time.Duration(len(queries))
		t.row(side, float64(matches)/float64(len(queries)), indexed, scan,
			fmt.Sprintf("%.1fx", float64(scan)/float64(indexed)))
	}
	t.flush()

	fmt.Println("\nreading: the index wins big on selective queries and converges to")
	fmt.Println("the scan as the query approaches the whole world (every region must")
	fmt.Println("be touched either way); answers are equivalence-tested in the suite.")
}
