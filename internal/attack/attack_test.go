package attack

import (
	"math"
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/pyramid"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func TestCenterGuess(t *testing.T) {
	r := geo.R(2, 2, 4, 6)
	if g := (Center{}).Guess(r, nil); !g.Eq(geo.Pt(3, 4)) {
		t.Errorf("center guess = %v", g)
	}
}

func TestBoundaryGuessOnBoundary(t *testing.T) {
	r := geo.R(0, 0, 2, 1)
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		g := Boundary{}.Guess(r, src)
		onX := g.X == r.Min.X || g.X == r.Max.X
		onY := g.Y == r.Min.Y || g.Y == r.Max.Y
		if !onX && !onY {
			t.Fatalf("boundary guess %v not on boundary", g)
		}
		if !r.Contains(g) {
			t.Fatalf("boundary guess %v outside rect", g)
		}
	}
	// Degenerate rect.
	if g := (Boundary{}).Guess(geo.PointRect(geo.Pt(1, 1)), src); !g.Eq(geo.Pt(1, 1)) {
		t.Errorf("degenerate boundary guess = %v", g)
	}
}

func TestUniformGuessInside(t *testing.T) {
	r := geo.R(0.2, 0.3, 0.4, 0.9)
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		if g := (Uniform{}).Guess(r, src); !r.Contains(g) {
			t.Fatalf("uniform guess %v outside", g)
		}
	}
}

func TestPriorRMS(t *testing.T) {
	// Unit square: sqrt(2/12) ≈ 0.4082.
	if got := PriorRMS(geo.R(0, 0, 1, 1)); math.Abs(got-math.Sqrt(1.0/6)) > 1e-12 {
		t.Errorf("PriorRMS unit square = %v", got)
	}
	if got := PriorRMS(geo.PointRect(geo.Pt(1, 1))); got != 0 {
		t.Errorf("PriorRMS point = %v", got)
	}
	// Monte-Carlo confirmation: RMS distance of uniform points from center.
	r := geo.R(0, 0, 2, 1)
	src := rng.New(3)
	var sum2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		p := geo.Pt(src.Range(0, 2), src.Range(0, 1))
		sum2 += p.Dist2(r.Center())
	}
	mc := math.Sqrt(sum2 / n)
	if math.Abs(mc-PriorRMS(r)) > 0.003 {
		t.Errorf("PriorRMS %v vs Monte-Carlo %v", PriorRMS(r), mc)
	}
}

func TestNormBoundaryDist(t *testing.T) {
	r := geo.R(0, 0, 1, 1)
	if d := normBoundaryDist(r, geo.Pt(0.5, 0.5)); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("center boundary dist = %v, want 0.5", d)
	}
	if d := normBoundaryDist(r, geo.Pt(0, 0.5)); d != 0 {
		t.Errorf("edge point boundary dist = %v", d)
	}
	if d := normBoundaryDist(geo.PointRect(geo.Pt(1, 1)), geo.Pt(1, 1)); d != 0 {
		t.Errorf("degenerate region boundary dist = %v", d)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rep := Evaluate(Center{}, nil, 0.01, 1)
	if rep.N != 0 || rep.MeanError != 0 {
		t.Errorf("empty evaluate = %+v", rep)
	}
}

func TestEvaluateExactRecovery(t *testing.T) {
	// User at center of every region: center attack has zero error and
	// leakage 1.
	samples := []Sample{
		{Region: geo.R(0, 0, 0.2, 0.2), TrueLoc: geo.Pt(0.1, 0.1)},
		{Region: geo.R(0.4, 0.4, 0.8, 0.6), TrueLoc: geo.Pt(0.6, 0.5)},
	}
	rep := Evaluate(Center{}, samples, 0.001, 1)
	if rep.MeanError > 1e-12 || rep.Leakage < 1-1e-9 || rep.HitRate != 1 {
		t.Errorf("exact recovery report = %+v", rep)
	}
}

func TestEvaluateDegenerateRegion(t *testing.T) {
	samples := []Sample{{Region: geo.PointRect(geo.Pt(0.5, 0.5)), TrueLoc: geo.Pt(0.5, 0.5)}}
	rep := Evaluate(Center{}, samples, 0.001, 1)
	if rep.Leakage != 1 {
		t.Errorf("point region should be total disclosure: %+v", rep)
	}
}

// End-to-end leakage ordering (the paper's core privacy claim):
// naive ≫ MBR > space-dependent under the attacks that exploit them.
func TestLeakageOrderingAcrossCloakers(t *testing.T) {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 4000, World: world, Dist: mobility.Uniform, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := grid.New(world, 32, 32)
	pyr, _ := pyramid.New(world, 8)
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		pyr.Insert(uint64(i+1), p)
	}
	pop := cloak.GridPopulation{Index: gi}
	req := privacy.Requirement{K: 25}

	collect := func(c cloak.Cloaker) []Sample {
		var out []Sample
		for i := 0; i < 300; i++ {
			uid := uint64(i*13 + 1)
			loc := pts[uid-1]
			res := c.Cloak(uid, loc, req)
			var set []geo.Point
			for _, p := range pts {
				if res.Region.Contains(p) {
					set = append(set, p)
				}
			}
			out = append(out, Sample{Region: res.Region, TrueLoc: loc, SetLocs: set})
		}
		return out
	}

	naive := Evaluate(Center{}, collect(&cloak.Naive{Pop: pop}), 0.005, 7)
	mbr := Evaluate(Center{}, collect(&cloak.MBR{Pop: pop}), 0.005, 7)
	quad := Evaluate(Center{}, collect(&cloak.Quadtree{Pyr: pyr}), 0.005, 7)

	// Naive: center attack recovers users (allowing world-boundary clips).
	if naive.Leakage < 0.9 {
		t.Errorf("naive leakage under center attack = %v, want ≈1", naive.Leakage)
	}
	if naive.HitRate < 0.8 {
		t.Errorf("naive hit rate = %v, want high", naive.HitRate)
	}
	// Space-dependent: center attack near the uniform prior.
	if quad.Leakage > 0.45 {
		t.Errorf("quadtree leakage = %v, want low", quad.Leakage)
	}
	if naive.Leakage <= mbr.Leakage {
		t.Errorf("expected naive (%v) > MBR (%v) center leakage", naive.Leakage, mbr.Leakage)
	}
	if mbr.Leakage <= quad.Leakage {
		t.Errorf("expected MBR (%v) > quadtree (%v) center leakage", mbr.Leakage, quad.Leakage)
	}

	// The MBR edge leak: an MBR has an anonymity-set member on every edge,
	// so its edge gap is exactly zero, while quadtree cells keep members
	// strictly interior on average.
	mbrSamples := collect(&cloak.MBR{Pop: pop})
	quadSamples := collect(&cloak.Quadtree{Pyr: pyr})
	mbrB := Evaluate(Boundary{}, mbrSamples, 0.005, 9)
	quadB := Evaluate(Boundary{}, quadSamples, 0.005, 9)
	if mbrB.EdgeGapN == 0 || quadB.EdgeGapN == 0 {
		t.Fatal("edge-gap samples missing SetLocs")
	}
	if mbrB.MeanEdgeGap > 1e-9 {
		t.Errorf("MBR edge gap = %v, want 0 (members on every edge)", mbrB.MeanEdgeGap)
	}
	if quadB.MeanEdgeGap <= 1e-6 {
		t.Errorf("quadtree edge gap = %v, want clearly positive", quadB.MeanEdgeGap)
	}
}

func TestAttackNames(t *testing.T) {
	if (Center{}).Name() != "center" || (Boundary{}).Name() != "boundary" || (Uniform{}).Name() != "uniform" {
		t.Error("attack names wrong")
	}
}
