package protocol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/prob"
)

func probNN(id uint64, p float64) prob.NNProb { return prob.NNProb{ID: id, Prob: p} }

// ServeAnonymizer exposes an anonymizer.Anonymizer over TCP — the endpoint
// mobile users send their exact locations and privacy profiles to. Pass
// WithMetrics to instrument the wire layer and answer MsgMetrics.
func ServeAnonymizer(addr string, anon *anonymizer.Anonymizer, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	h := &anonHandler{anon: anon}
	return Serve(addr, h.handle, logf, opts...)
}

type anonHandler struct {
	anon *anonymizer.Anonymizer
}

func (h *anonHandler) handle(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	d := NewDecoder(payload)
	switch typ {
	case MsgRegister:
		id := d.U64()
		profile, err := decodeProfile(d)
		if err != nil {
			return nil, err
		}
		return nil, h.anon.Register(id, profile)

	case MsgUpdate, MsgCloakQuery:
		id := d.U64()
		loc := exactPoint(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		var res cloak.Result
		var err error
		if typ == MsgUpdate {
			res, err = h.anon.UpdateCtx(ctx, id, loc)
		} else {
			res, err = h.anon.CloakQueryCtx(ctx, id, loc)
		}
		if err != nil {
			return nil, mapOverload(err)
		}
		return encodeResult(res), nil

	case MsgBatchUpdate:
		// Coarse whole-batch backpressure gate: when the forward queue is
		// saturated there is no point decoding and cloaking a batch whose
		// forwards would all be refused — the client gets one typed
		// MsgOverloaded instead.
		if h.anon.Saturated() {
			return nil, fmt.Errorf("%w: anonymizer forward queue full", ErrOverloaded)
		}
		reqs := decodeBatchRequests(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		results := h.anon.BatchUpdateCtx(ctx, reqs)
		return encodeBatchResults(results), nil

	case MsgDeregister:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		h.anon.Deregister(id)
		return nil, nil

	case MsgAnonStats:
		st := h.anon.Stats()
		var e Encoder
		e.U32(uint32(st.Registered))
		e.U64(st.Updates).U64(st.Queries).U64(st.Reused)
		e.U64(st.BestEffort).U64(st.Forwarded).U64(st.ForwardErrs)
		e.U64(st.Spilled).U64(st.Replayed).U64(st.Dropped)
		e.U32(uint32(st.QueueDepth))
		e.U64(st.Batches).U64(st.SharedHits)
		return e.Bytes(), nil

	case MsgSetMode:
		id := d.U64()
		mode := privacy.Mode(d.U8())
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.anon.SetMode(id, mode)

	case MsgUpdateProfile:
		id := d.U64()
		profile, err := decodeProfile(d)
		if err != nil {
			return nil, err
		}
		return nil, h.anon.UpdateProfile(id, profile)

	default:
		return nil, fmt.Errorf("protocol: anonymizer service: unknown message type %d", typ)
	}
}

// mapOverload translates the anonymizer engine's backpressure rejection
// into the protocol-level sentinel so it leaves the service as a
// MsgOverloaded frame rather than a generic error.
func mapOverload(err error) error {
	if errors.Is(err, anonymizer.ErrOverloaded) {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	return err
}

// exactPoint decodes a user's exact location off the wire. It is the one
// ingress where raw locations enter the trusted tier; everything derived
// from its result is tainted until a declared cloaking boundary
// (//lint:sanitized) severs the flow, and the privleak pass proves that
// no such value reaches a server-bound encode, a log line, or a metric.
//
//lint:source wire ingress of a user's exact location into the trusted tier
func exactPoint(d *Decoder) geo.Point { return d.Point() }

// encodeProfile flattens a profile into entries.
func encodeProfile(e *Encoder, p *privacy.Profile) {
	entries := p.Entries()
	e.U16(uint16(len(entries)))
	for _, en := range entries {
		e.U16(uint16(en.From)).U16(uint16(en.To))
		e.U32(uint32(en.Req.K))
		e.F64(en.Req.MinArea)
		// +Inf survives the float64 round trip, so "unconstrained" encodings
		// are preserved exactly.
		e.F64(en.Req.MaxArea)
	}
}

func decodeProfile(d *Decoder) (*privacy.Profile, error) {
	n := int(d.U16())
	entries := make([]privacy.Entry, 0, capHint(n, 24, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		entries = append(entries, privacy.Entry{
			From: int(d.U16()),
			To:   int(d.U16()),
			Req: privacy.Requirement{
				K:       int(d.U32()),
				MinArea: d.F64(),
				MaxArea: d.F64(),
			},
		})
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return privacy.NewProfile(entries...)
}

// Result flags on the wire.
const (
	flagK       = 1 << 0
	flagMinArea = 1 << 1
	flagMaxArea = 1 << 2
	flagReused  = 1 << 3
)

func encodeResult(res cloak.Result) []byte {
	var e Encoder
	e.Rect(res.Region)
	e.U32(uint32(res.K))
	var flags byte
	if res.SatisfiedK {
		flags |= flagK
	}
	if res.SatisfiedMinArea {
		flags |= flagMinArea
	}
	if res.SatisfiedMaxArea {
		flags |= flagMaxArea
	}
	if res.Reused {
		flags |= flagReused
	}
	e.U8(flags)
	return e.Bytes()
}

func decodeResult(d *Decoder) cloak.Result {
	res := cloak.Result{
		Region: d.Rect(),
		K:      int(d.U32()),
	}
	flags := d.U8()
	res.SatisfiedK = flags&flagK != 0
	res.SatisfiedMinArea = flags&flagMinArea != 0
	res.SatisfiedMaxArea = flags&flagMaxArea != 0
	res.Reused = flags&flagReused != 0
	return res
}

// decodeBatchRequests reads a MsgBatchUpdate request body: a
// length-prefixed run of (user id, exact location) pairs. Trusted-tier
// only — the points pass through the exactPoint taint source.
func decodeBatchRequests(d *Decoder) []cloak.Request {
	n := int(d.U32())
	reqs := make([]cloak.Request, 0, capHint(n, 24, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		reqs = append(reqs, cloak.Request{ID: d.U64(), Loc: exactPoint(d)})
	}
	return reqs
}

// encodeBatchResults writes a MsgBatchUpdate OK response: per request a
// presence byte, then the cloak result for accepted updates. The nil
// entries keep the response parallel to the request slice.
func encodeBatchResults(results []*cloak.Result) []byte {
	var e Encoder
	e.U32(uint32(len(results)))
	for _, res := range results {
		if res == nil {
			e.U8(0)
			continue
		}
		e.U8(1)
		e.buf = append(e.buf, encodeResult(*res)...)
	}
	return e.Bytes()
}

// decodeBatchResults is the inverse of encodeBatchResults.
func decodeBatchResults(d *Decoder) []*cloak.Result {
	n := int(d.U32())
	out := make([]*cloak.Result, 0, capHint(n, 1, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		if d.U8() == 0 {
			out = append(out, nil)
			continue
		}
		res := decodeResult(d)
		out = append(out, &res)
	}
	return out
}

// AnonymizerClient is the mobile user's connection to the trusted third
// party.
type AnonymizerClient struct {
	c *Client
}

// DialAnonymizer connects to an anonymizer service. Options configure the
// client's fault tolerance (deadlines, retries, circuit breaker).
func DialAnonymizer(addr string, opts ...DialOption) (*AnonymizerClient, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	return &AnonymizerClient{c: c}, nil
}

// Close closes the connection.
func (ac *AnonymizerClient) Close() error { return ac.c.Close() }

// Register sends the privacy profile.
func (ac *AnonymizerClient) Register(id uint64, profile *privacy.Profile) error {
	var e Encoder
	e.U64(id)
	encodeProfile(&e, profile)
	_, err := ac.c.Call(MsgRegister, e.Bytes())
	return err
}

// Update reports an exact location and returns the cloaking result.
func (ac *AnonymizerClient) Update(id uint64, loc geo.Point) (cloak.Result, error) {
	return ac.locCall(context.Background(), MsgUpdate, id, loc)
}

// UpdateCtx is Update under a context (deadline, trace).
func (ac *AnonymizerClient) UpdateCtx(ctx context.Context, id uint64, loc geo.Point) (cloak.Result, error) {
	return ac.locCall(ctx, MsgUpdate, id, loc)
}

// CloakQuery cloaks a location for an upcoming query.
func (ac *AnonymizerClient) CloakQuery(id uint64, loc geo.Point) (cloak.Result, error) {
	return ac.locCall(context.Background(), MsgCloakQuery, id, loc)
}

// CloakQueryCtx is CloakQuery under a context (deadline, trace).
func (ac *AnonymizerClient) CloakQueryCtx(ctx context.Context, id uint64, loc geo.Point) (cloak.Result, error) {
	return ac.locCall(ctx, MsgCloakQuery, id, loc)
}

// locCall encodes the user's own exact location toward the trusted
// anonymizer tier — the one wire hop exact locations are allowed on.
//
//lint:trusted-ingress user-side client encoding its own location to the trusted tier
func (ac *AnonymizerClient) locCall(ctx context.Context, typ byte, id uint64, loc geo.Point) (cloak.Result, error) {
	var e Encoder
	e.U64(id).Point(loc)
	resp, err := ac.c.CallCtx(ctx, typ, e.Bytes())
	if err != nil {
		return cloak.Result{}, err
	}
	d := NewDecoder(resp)
	res := decodeResult(d)
	return res, d.Err()
}

// BatchUpdate reports many exact locations in one round trip. The returned
// slice parallels the input; nil entries mark updates the anonymizer
// rejected (unknown user, passive mode, out-of-world location).
//
//lint:trusted-ingress user-side client encoding its own locations to the trusted tier
func (ac *AnonymizerClient) BatchUpdate(reqs []cloak.Request) ([]*cloak.Result, error) {
	return ac.BatchUpdateCtx(context.Background(), reqs)
}

// BatchUpdateCtx is BatchUpdate under a context (deadline, trace).
//
//lint:trusted-ingress user-side client encoding its own locations to the trusted tier
func (ac *AnonymizerClient) BatchUpdateCtx(ctx context.Context, reqs []cloak.Request) ([]*cloak.Result, error) {
	var e Encoder
	e.U32(uint32(len(reqs)))
	for _, r := range reqs {
		e.U64(r.ID).Point(r.Loc)
	}
	resp, err := ac.c.CallCtx(ctx, MsgBatchUpdate, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := NewDecoder(resp)
	out := decodeBatchResults(d)
	return out, d.Err()
}

// Deregister removes the user.
func (ac *AnonymizerClient) Deregister(id uint64) error {
	var e Encoder
	e.U64(id)
	_, err := ac.c.Call(MsgDeregister, e.Bytes())
	return err
}

// Stats reads the anonymizer's activity counters.
func (ac *AnonymizerClient) Stats() (anonymizer.Stats, error) {
	resp, err := ac.c.Call(MsgAnonStats, nil)
	if err != nil {
		return anonymizer.Stats{}, err
	}
	d := NewDecoder(resp)
	st := anonymizer.Stats{
		Registered:  int(d.U32()),
		Updates:     d.U64(),
		Queries:     d.U64(),
		Reused:      d.U64(),
		BestEffort:  d.U64(),
		Forwarded:   d.U64(),
		ForwardErrs: d.U64(),
		Spilled:     d.U64(),
		Replayed:    d.U64(),
		Dropped:     d.U64(),
		QueueDepth:  int(d.U32()),
		Batches:     d.U64(),
		SharedHits:  d.U64(),
	}
	return st, d.Err()
}

// SetMode switches the user's participation mode.
func (ac *AnonymizerClient) SetMode(id uint64, m privacy.Mode) error {
	var e Encoder
	e.U64(id).U8(byte(m))
	_, err := ac.c.Call(MsgSetMode, e.Bytes())
	return err
}

// UpdateProfile replaces the user's privacy profile in place — the "raise
// my k" flip — keeping the user in the anonymity population throughout.
func (ac *AnonymizerClient) UpdateProfile(id uint64, profile *privacy.Profile) error {
	var e Encoder
	e.U64(id)
	encodeProfile(&e, profile)
	_, err := ac.c.Call(MsgUpdateProfile, e.Bytes())
	return err
}
