// Command lbssoak runs the adversarial city-scale soak harness: it boots
// the real three-tier stack in-process, streams a synthetic population
// through it, drives the scenario catalog (flash crowds, mass profile
// flips, database outages, slow links, rolling restarts, query floods)
// and gates each run on service-level objectives read from the daemons'
// own live metrics endpoints.
//
// Exit status: 0 when every scenario meets every SLO, 1 when any SLO is
// violated, 2 on harness/setup errors. CI gates on exactly this.
//
// Usage:
//
//	lbssoak -users 20000 -workers 8 -seed 1                  # full catalog
//	lbssoak -scenarios flash_crowd,db_outage -scale 0.4      # CI short soak
//	lbssoak -users 1000000 -batch 64 -scale 2                # long city-scale soak
//	lbssoak -admission=false -scenarios db_outage            # demonstrate the failure
//	lbssoak -shards 4                                        # routed database tier (4 lbsd shards)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/scenario"
)

func main() {
	users := flag.Int("users", 20000, "registered mobile users (streamed; try 1000000 for the city-scale soak)")
	objs := flag.Int("objs", 5000, "stationary public objects")
	k := flag.Int("k", 10, "baseline anonymity requirement")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "closed-loop driver connections")
	batch := flag.Int("batch", 16, "locations per BatchUpdate frame")
	seed := flag.Uint64("seed", 1, "run seed; same seed + flags = same workload")
	scale := flag.Float64("scale", 1.0, "multiplier on scenario phase durations (CI uses < 1)")
	admission := flag.Bool("admission", true, "enable daemon admission control + forward backpressure (the machinery under test)")
	maxInflight := flag.Int("max-inflight", 256, "per-daemon admission budget (with -admission)")
	shards := flag.Int("shards", 0, "deploy the database tier as this many lbsd shards behind a routing tier (0/1 = single database; shard_kill forces ≥ 2)")
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (empty = full catalog)")
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	flag.Parse()

	if *list {
		for _, sc := range scenario.Catalog() {
			fmt.Printf("  %-16s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var run []scenario.Scenario
	if *scenarios == "" {
		run = scenario.Catalog()
	} else {
		for _, name := range strings.Split(*scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := scenario.Find(name)
			if !ok {
				log.Printf("lbssoak: unknown scenario %q (use -list)", name)
				os.Exit(2)
			}
			run = append(run, sc)
		}
	}

	cfg := scenario.Config{
		Users: *users, Objects: *objs, K: *k,
		Workers: *workers, Batch: *batch,
		Seed: *seed, Scale: *scale,
		Admission: *admission, MaxInflight: *maxInflight,
		Shards: *shards,
		Logf:   log.Printf,
	}
	log.Printf("lbssoak: %d scenarios, %d users, %d workers, seed %d, scale %g, admission %v, shards %d",
		len(run), *users, *workers, *seed, *scale, *admission, *shards)

	failed := 0
	for _, sc := range run {
		log.Printf("lbssoak: === %s — %s", sc.Name, sc.Desc)
		res, err := scenario.Run(sc, cfg)
		if err != nil {
			log.Printf("lbssoak: %s: harness error: %v", sc.Name, err)
			os.Exit(2)
		}
		fmt.Println(res.Summary())
		for _, v := range res.Violations {
			fmt.Printf("  SLO VIOLATION %v\n", v)
		}
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		log.Printf("lbssoak: %d of %d scenarios violated their SLOs", failed, len(run))
		os.Exit(1)
	}
	log.Printf("lbssoak: all %d scenarios met their SLOs", len(run))
}
