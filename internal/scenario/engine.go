package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloak"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/stats"
)

// Env is the live harness a Scenario drives: the booted stack, the
// streaming city, the persistent worker connections, and the accounting
// that feeds SLO evaluation.
type Env struct {
	cfg Config
	sc  Scenario
	st  *stack
	gen *mobility.Stream

	ctrl *protocol.AnonymizerClient // control plane: metrics/stats reads

	tick     atomic.Uint64
	stopTick chan struct{}

	drivers []*driver

	// acked marks users whose update was acknowledged at least once — the
	// bitmap side of the acked-vs-resident consistency check. One flag per
	// user is the harness's only O(users) state.
	acked      []atomic.Bool
	ops        atomic.Uint64
	errs       atomic.Uint64
	sheds      atomic.Uint64
	profileK   atomic.Int64 // current population-wide k (after flips)
	flipCursor uint64       // users flipped so far, for logging

	// Harness-side latency aggregation. Outermost rank: the scenario
	// stack calls into every other tier and must never be acquired from
	// inside one of them.
	mu       sync.Mutex //lint:lock stack@3
	updLat   stats.Latencies
	qryLat   stats.Latencies
	recovery time.Duration

	baseDrops, baseKMissed float64
}

// driver is one closed-loop worker's connection pair and RNG.
type driver struct {
	anon *protocol.AnonymizerClient
	db   *protocol.DatabaseClient
	src  *rng.Source
}

// tickInterval is how often the streamed city advances one tick — wall
// time, deliberately unscaled so movement speed per second is constant
// across -scale settings.
const tickInterval = 50 * time.Millisecond

// scenarioSeed mixes the scenario name into the run seed so every
// scenario sees a distinct but reproducible city and workload.
func scenarioSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ h.Sum64()
}

// Run executes one scenario end to end: boot, seed, drive, drain,
// evaluate. The error return covers harness failures (cannot bind, cannot
// seed); SLO violations land in the Result instead.
func Run(sc Scenario, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if sc.Tune != nil {
		sc.Tune(&cfg)
	}
	res := Result{Scenario: sc.Name}
	t0 := time.Now()

	st, err := newStack(cfg, sc.Link)
	if err != nil {
		return res, fmt.Errorf("scenario %s: stack: %w", sc.Name, err)
	}
	defer st.Close()

	gen, err := mobility.NewStream(mobility.StreamSpec{
		World: st.world, Seed: scenarioSeed(cfg.Seed, sc.Name), NumClusters: 24,
	})
	if err != nil {
		return res, err
	}
	e := &Env{
		cfg: cfg, sc: sc, st: st, gen: gen,
		stopTick: make(chan struct{}),
		acked:    make([]atomic.Bool, cfg.Users+1),
	}
	e.profileK.Store(int64(cfg.K))
	defer e.teardown()

	e.ctrl, err = protocol.DialAnonymizer(st.anonSvc.Addr(),
		protocol.WithCallTimeout(stackCallTimeout))
	if err != nil {
		return res, err
	}
	dialOpts := []protocol.DialOption{
		protocol.WithCallTimeout(stackCallTimeout),
		protocol.WithRetries(1),
		protocol.WithRetryBackoff(5*time.Millisecond, 100*time.Millisecond),
	}
	for w := 0; w < cfg.Workers; w++ {
		ac, err := protocol.DialAnonymizer(st.anonSvc.Addr(), dialOpts...)
		if err != nil {
			return res, err
		}
		dc, err := protocol.DialDatabase(st.dbAddr, dialOpts...)
		if err != nil {
			ac.Close()
			return res, err
		}
		e.drivers = append(e.drivers, &driver{
			anon: ac, db: dc,
			src: rng.New(scenarioSeed(cfg.Seed, sc.Name) + uint64(w)*7919),
		})
	}

	if err := e.seed(); err != nil {
		return res, fmt.Errorf("scenario %s: seed: %w", sc.Name, err)
	}

	// Baselines after seeding: the first k-1 users of a fresh city cannot
	// have k neighbors, so seed-phase k misses are warmup, not violations.
	series, err := e.anonSeries()
	if err != nil {
		return res, err
	}
	e.baseDrops = counterVal(series, "anon_forward_queue_drops_total")
	e.baseKMissed = counterVal(series, "anon_cloak_k_missed_total")

	go e.runTicker()
	if err := sc.Run(e); err != nil {
		return res, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	close(e.stopTick)

	e.evaluate(&res)
	res.Wall = time.Since(t0)
	return res, nil
}

func (e *Env) teardown() {
	if e.ctrl != nil {
		e.ctrl.Close()
	}
	for _, d := range e.drivers {
		d.anon.Close()
		d.db.Close()
	}
}

func (e *Env) runTicker() {
	t := time.NewTicker(tickInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.tick.Add(1)
		case <-e.stopTick:
			return
		}
	}
}

// Log writes a progress line through the run's logger.
func (e *Env) Log(format string, args ...interface{}) { e.cfg.Logf(format, args...) }

// scaled applies the run's time-scale to a phase duration.
func (e *Env) scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * e.cfg.Scale)
}

// seed loads the public objects, registers every user, and streams one
// full round of location updates through the pipeline so the database
// holds the whole population before any adversity starts.
func (e *Env) seed() error {
	objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: e.cfg.Objects, World: e.st.world, Dist: mobility.Uniform,
		Seed: scenarioSeed(e.cfg.Seed, e.sc.Name) + 1,
	})
	if err != nil {
		return err
	}
	objs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
	}
	setup, err := protocol.DialDatabase(e.st.dbAddr, protocol.WithCallTimeout(stackCallTimeout))
	if err != nil {
		return err
	}
	defer setup.Close()
	if err := setup.LoadStationary(objs); err != nil {
		return err
	}

	t0 := time.Now()
	prof := privacy.Constant(privacy.Requirement{K: e.cfg.K})
	if err := e.eachUserShard(func(d *driver, from, to uint64) error {
		for id := from; id <= to; id++ {
			id := id
			if err := e.overloadRetry(func() error { return d.anon.Register(id, prof) }); err != nil {
				return fmt.Errorf("register %d: %w", id, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := e.eachUserShard(func(d *driver, from, to uint64) error {
		// Small chunks keep each wire call far inside its deadline even
		// when a scenario's fault plan throttles the shared forward link
		// phase 3 of the batch pipeline drains through.
		const chunk = 256
		for lo := from; lo <= to; lo += chunk {
			hi := lo + chunk - 1
			if hi > to {
				hi = to
			}
			reqs := make([]cloak.Request, 0, hi-lo+1)
			for id := lo; id <= hi; id++ {
				reqs = append(reqs, cloak.Request{ID: id, Loc: e.gen.Pos(id, 0, nil)})
			}
			var results []*cloak.Result
			if err := e.overloadRetry(func() error {
				var err error
				results, err = d.anon.BatchUpdate(reqs)
				return err
			}); err != nil {
				return fmt.Errorf("seed batch at %d: %w", lo, err)
			}
			for i, r := range results {
				if r != nil {
					e.acked[reqs[i].ID].Store(true)
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := e.waitDrain(60 * time.Second); err != nil {
		return err
	}
	if got := e.st.privateUserCount(); got != e.cfg.Users {
		return fmt.Errorf("database holds %d users after seeding, want %d", got, e.cfg.Users)
	}
	e.Log("seeded %d users + %d objects in %v", e.cfg.Users, e.cfg.Objects,
		time.Since(t0).Round(time.Millisecond))
	return nil
}

// overloadRetry runs fn until it stops answering a typed shed — seeding
// and control-plane sweeps must make progress even under a deliberately
// tiny admission budget, and a shed's contract is "back off and retry".
func (e *Env) overloadRetry(fn func() error) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := fn()
		if err == nil || !errors.Is(err, protocol.ErrOverloaded) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("still overloaded after 30s: %w", err)
		}
		e.sheds.Add(1)
		time.Sleep(2 * time.Millisecond)
	}
}

// eachUserShard fans a contiguous id-range task out over the worker
// connections and collects the first error.
func (e *Env) eachUserShard(fn func(d *driver, from, to uint64) error) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(e.drivers))
	per := (e.cfg.Users + len(e.drivers) - 1) / len(e.drivers)
	for w, d := range e.drivers {
		from := uint64(w*per) + 1
		to := uint64((w + 1) * per)
		if to > uint64(e.cfg.Users) {
			to = uint64(e.cfg.Users)
		}
		if from > to {
			continue
		}
		wg.Add(1)
		go func(d *driver, from, to uint64) {
			defer wg.Done()
			if err := fn(d, from, to); err != nil {
				errc <- err
			}
		}(d, from, to)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// Drive runs one closed-loop phase across all workers.
func (e *Env) Drive(ph Phase) error {
	dur := e.scaled(ph.Dur)
	e.Log("phase %-14s %v (query%%=%d hotspot=%v)", ph.Name, dur.Round(time.Millisecond), ph.QueryPct, ph.Hot != nil)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for _, d := range e.drivers {
		wg.Add(1)
		go func(d *driver) {
			defer wg.Done()
			e.driveWorker(d, ph, deadline)
		}(d)
	}
	wg.Wait()
	return nil
}

func (e *Env) driveWorker(d *driver, ph Phase, deadline time.Time) {
	var upd, qry stats.Latencies
	for time.Now().Before(deadline) {
		tick := e.tick.Load()
		if d.src.Intn(100) < ph.QueryPct {
			id := uint64(d.src.Intn(e.cfg.Users)) + 1
			loc := e.gen.Pos(id, tick, ph.Hot)
			t := time.Now()
			res, err := d.anon.CloakQuery(id, loc)
			if err == nil {
				var nn server.PrivateNNResult
				nn, err = d.db.PrivateNN(server.PrivateNNQuery{Region: res.Region, Class: "poi"})
				if err == nil {
					server.RefineNN(loc, nn.Candidates)
				}
			}
			e.ops.Add(1)
			e.account(err, ph, time.Since(t), &qry)
			continue
		}
		reqs := make([]cloak.Request, e.cfg.Batch)
		for i := range reqs {
			id := uint64(d.src.Intn(e.cfg.Users)) + 1
			reqs[i] = cloak.Request{ID: id, Loc: e.gen.Pos(id, tick, ph.Hot)}
		}
		t := time.Now()
		results, err := d.anon.BatchUpdate(reqs)
		e.ops.Add(uint64(len(reqs)))
		if err != nil {
			e.account(err, ph, 0, nil)
			continue
		}
		upd.Add(time.Since(t))
		for i, r := range results {
			if r == nil {
				// Under backpressure a nil entry is a typed per-entry shed;
				// the inputs are valid by construction, so nothing else
				// produces one here.
				e.sheds.Add(1)
			} else {
				e.acked[reqs[i].ID].Store(true)
			}
		}
	}
	e.mu.Lock()
	e.updLat.Merge(&upd)
	e.qryLat.Merge(&qry)
	e.mu.Unlock()
}

// account books one operation outcome: typed sheds are backoff signals,
// hard errors count toward the error-rate SLO unless the phase declared
// them expected (e.g. querying a killed database).
func (e *Env) account(err error, ph Phase, d time.Duration, lat *stats.Latencies) {
	switch {
	case err == nil:
		if lat != nil {
			lat.Add(d)
		}
	case errors.Is(err, protocol.ErrOverloaded):
		e.sheds.Add(1)
		time.Sleep(2 * time.Millisecond) // honor the backoff the shed asks for
	default:
		if !ph.AllowErrors {
			e.errs.Add(1)
		}
	}
}

// KillDB takes the database tier down, leaving its address free for a
// restart. Updates must keep flowing into the spill queue.
func (e *Env) KillDB() {
	e.Log("killing database at %s", e.st.dbAddr)
	e.st.killDB()
}

// RestartDB brings the database back on the same address. fromSnapshot
// discards the process state and restores the last SaveSnapshot — the
// rolling-restart path; plain restart keeps the in-memory state (a
// network-only outage).
func (e *Env) RestartDB(fromSnapshot bool) error {
	e.Log("restarting database (snapshot=%v)", fromSnapshot)
	return e.st.restartDB(fromSnapshot)
}

// SaveSnapshot persists the database state for a later snapshot restart.
func (e *Env) SaveSnapshot() error { return e.st.saveSnapshot() }

// KillShard takes down one shard of the routed tier; the router and the
// other shards keep serving, and the shard's tiles fail behind the
// router's breaker until it comes back.
func (e *Env) KillShard(i int) {
	e.Log("killing shard %d at %s", i, e.st.shardAddrs[i])
	e.st.killShard(i)
}

// RestartShard rebinds a killed shard on its original address with its
// in-memory state intact.
func (e *Env) RestartShard(i int) error {
	e.Log("restarting shard %d", i)
	return e.st.restartShard(i)
}

// Shards reports the shard count of the routed tier (0 in single mode).
func (e *Env) Shards() int { return len(e.st.shardSrvs) }

// FlipProfiles raises (or lowers) every user's k at once — the mass
// privacy-dial flip. The flip is capped at 50k users per call so a
// million-user run doesn't serialize forever; the cap is logged, never
// silent.
func (e *Env) FlipProfiles(newK int) error {
	n := e.cfg.Users
	const flipCap = 50000
	if n > flipCap {
		e.Log("profile flip capped at %d of %d users", flipCap, n)
		n = flipCap
	}
	e.Log("flipping %d profiles to k=%d", n, newK)
	prof := privacy.Constant(privacy.Requirement{K: newK})
	err := e.eachUserShard(func(d *driver, from, to uint64) error {
		if from > uint64(n) {
			return nil
		}
		if to > uint64(n) {
			to = uint64(n)
		}
		for id := from; id <= to; id++ {
			if err := d.anon.UpdateProfile(id, prof); err != nil {
				if errors.Is(err, protocol.ErrOverloaded) {
					e.sheds.Add(1)
					id-- // retry after the backoff the shed asks for
					time.Sleep(5 * time.Millisecond)
					continue
				}
				return fmt.Errorf("flip %d: %w", id, err)
			}
		}
		return nil
	})
	if err == nil {
		e.profileK.Store(int64(newK))
		e.flipCursor += uint64(n)
	}
	return err
}

// AwaitRecovery blocks until the pipeline reports healthy — spill queue
// drained and forward breaker closed, both read from the anonymizer's
// live metrics endpoint — and records how long that took. The hard cap is
// generous; the SLO judges the recorded duration.
func (e *Env) AwaitRecovery() error {
	t0 := time.Now()
	hardCap := 60 * time.Second
	for time.Since(t0) < hardCap {
		series, err := e.anonSeries()
		if err == nil {
			depth := gaugeVal(series, "anon_forward_queue_depth")
			breaker := gaugeVal(series, "proto_breaker_state")
			if depth == 0 && breaker == 0 {
				e.mu.Lock()
				e.recovery = time.Since(t0)
				e.mu.Unlock()
				e.Log("recovered in %v", time.Since(t0).Round(time.Millisecond))
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	e.mu.Lock()
	e.recovery = hardCap
	e.mu.Unlock()
	return fmt.Errorf("pipeline did not recover within %v", hardCap)
}

// waitDrain waits for the spill queue to empty (ignoring breaker state —
// used after seeding and at teardown).
func (e *Env) waitDrain(within time.Duration) error {
	t0 := time.Now()
	for time.Since(t0) < within {
		series, err := e.anonSeries()
		if err == nil && gaugeVal(series, "anon_forward_queue_depth") == 0 {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("spill queue not drained within %v", within)
}

// anonSeries pulls the anonymizer daemon's full metric snapshot over the
// wire. MsgMetrics is in the always-admitted class, so this keeps working
// while the daemon sheds load — the property that makes overload
// observable at all.
func (e *Env) anonSeries() ([]obs.MetricSnapshot, error) { return e.ctrl.Metrics() }

// evaluate reads the final daemon-side metrics and scores every SLO.
func (e *Env) evaluate(res *Result) {
	res.Ops = e.ops.Load()
	res.Errors = e.errs.Load()
	res.Sheds = e.sheds.Load()
	e.mu.Lock()
	res.Recovery = e.recovery
	e.mu.Unlock()

	violate := func(slo, format string, args ...interface{}) {
		res.Violations = append(res.Violations, Violation{SLO: slo, Detail: fmt.Sprintf(format, args...)})
	}

	if err := e.waitDrain(30 * time.Second); err != nil {
		violate("drain", "%v", err)
	}
	series, err := e.anonSeries()
	if err != nil {
		violate("observability", "metrics endpoint unreadable at teardown: %v", err)
		return
	}

	// Zero lost updates: an eviction is an acknowledged update that
	// silently died — the failure mode backpressure exists to prevent.
	res.LostUpdates = uint64(counterVal(series, "anon_forward_queue_drops_total") - e.baseDrops)
	if res.LostUpdates > 0 {
		violate("zero-lost-updates", "%d acked updates evicted from the spill queue (anon_forward_queue_drops_total)", res.LostUpdates)
	}

	// k never violated after warmup.
	res.KViolations = uint64(counterVal(series, "anon_cloak_k_missed_total") - e.baseKMissed)
	if res.KViolations > 0 {
		violate("k-anonymity", "%d post-seed cloaks missed k (anon_cloak_k_missed_total)", res.KViolations)
	}

	// Acked-vs-resident consistency: every user whose update was ever
	// acknowledged must be resident in the database after the drain.
	ackedUsers := 0
	for i := 1; i <= e.cfg.Users; i++ {
		if e.acked[i].Load() {
			ackedUsers++
		}
	}
	if resident := e.st.privateUserCount(); resident < ackedUsers {
		violate("consistency", "database resident count %d < %d acked users", resident, ackedUsers)
	}

	// Latency budgets from the daemon's own request histograms.
	res.UpdateP99 = histP99(series, "proto_request_seconds", "update", "batch_update")
	res.QueryP99 = histP99(series, "proto_request_seconds", "cloak_query")
	if e.sc.SLO.UpdateP99 > 0 && res.UpdateP99 > e.sc.SLO.UpdateP99 {
		violate("update-p99", "daemon-side update p99 %v > budget %v", res.UpdateP99, e.sc.SLO.UpdateP99)
	}
	if e.sc.SLO.QueryP99 > 0 && res.QueryP99 > e.sc.SLO.QueryP99 {
		violate("query-p99", "daemon-side cloak-query p99 %v > budget %v", res.QueryP99, e.sc.SLO.QueryP99)
	}

	if e.sc.SLO.MaxErrorRate >= 0 && res.Ops > 0 {
		rate := float64(res.Errors) / float64(res.Ops)
		if rate > e.sc.SLO.MaxErrorRate {
			violate("error-rate", "hard-error rate %.4f > budget %.4f (%d/%d)", rate, e.sc.SLO.MaxErrorRate, res.Errors, res.Ops)
		}
	}
	if e.sc.SLO.RecoverWithin > 0 && res.Recovery > e.sc.SLO.RecoverWithin {
		violate("recovery", "pipeline recovery took %v > budget %v", res.Recovery, e.sc.SLO.RecoverWithin)
	}
}

// counterVal reads one counter from a wire snapshot (0 when absent).
func counterVal(series []obs.MetricSnapshot, name string) float64 {
	for _, s := range series {
		if s.Name == name && s.Kind == obs.KindCounter {
			return s.Value
		}
	}
	return 0
}

// gaugeVal reads one gauge from a wire snapshot (0 when absent).
func gaugeVal(series []obs.MetricSnapshot, name string) float64 {
	for _, s := range series {
		if s.Name == name && s.Kind == obs.KindGauge {
			return s.Value
		}
	}
	return 0
}

// histP99 returns the worst p99 across the named histogram's series whose
// "type" label matches any of types (0 when none has observations).
func histP99(series []obs.MetricSnapshot, name string, types ...string) time.Duration {
	var worst float64
	for _, s := range series {
		if s.Name != name || s.Kind != obs.KindHistogram || s.Hist.Count() == 0 {
			continue
		}
		for _, l := range s.Labels {
			if l.Key != "type" {
				continue
			}
			for _, t := range types {
				if l.Value == t {
					if q := s.Hist.Quantile(99); q > worst {
						worst = q
					}
				}
			}
		}
	}
	return time.Duration(worst * float64(time.Second))
}
