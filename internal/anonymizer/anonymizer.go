// Package anonymizer implements the Location Anonymizer of Section 5: the
// trusted third party standing between mobile users and the location-based
// database server. It registers users with their privacy profiles, receives
// exact location updates, cloaks them with a configurable algorithm from
// the cloak package, and forwards only the cloaked regions downstream.
//
// Storage discipline follows the paper's design goal that the anonymizer
// "does not need to store the exact location information": with a
// space-dependent algorithm configured, the anonymizer keeps only pyramid
// cell counters (metadata, in the paper's words). The data-dependent
// algorithms of Figure 3 inherently require neighbor positions, so
// selecting them keeps an exact-position index inside the trusted party —
// StoresExactLocations reports which regime is active.
//
// # Concurrency model
//
// The anonymizer is sharded for multicore scaling (Section 5.3 demands the
// tier keep up with "tens of thousands of updates per second"):
//
//   - Per-user state — profiles, modes, charges, incremental region caches —
//     is partitioned into Config.Shards lock stripes keyed by user id.
//     Operations on users in different shards never contend.
//   - The spatial indices (pyramid, exact-position grid) form a single
//     reader/writer domain: relocations are applied by one writer at a time
//     (batched per shard in BatchUpdate), while cloaking computations — pure
//     reads — run concurrently under the read lock.
//   - Activity counters are atomics, off every lock.
//
// Lock order, where both are held: shard mutex → index lock. With
// Shards=1 the anonymizer degenerates to the historical fully-serialized
// behavior, which the differential tests use as the reference.
package anonymizer

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/pyramid"
	"repro/internal/trace"
)

// Algorithm selects the cloaking algorithm.
type Algorithm uint8

const (
	// AlgQuadtree is the space-dependent top-down quadtree (Figure 4a).
	// It is the default.
	AlgQuadtree Algorithm = iota
	// AlgGrid is the space-dependent fixed grid with merging (Figure 4b).
	AlgGrid
	// AlgGridML is AlgGrid with multi-level refinement.
	AlgGridML
	// AlgNaive is the data-dependent centered expansion (Figure 3a).
	AlgNaive
	// AlgMBR is the data-dependent k-nearest-neighbor MBR (Figure 3b).
	AlgMBR
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgQuadtree:
		return "quadtree"
	case AlgGrid:
		return "grid"
	case AlgGridML:
		return "grid-ml"
	case AlgNaive:
		return "naive"
	case AlgMBR:
		return "mbr"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// spaceDependent reports whether the algorithm works from aggregate counts
// only.
func (a Algorithm) spaceDependent() bool {
	return a == AlgQuadtree || a == AlgGrid || a == AlgGridML
}

// Forwarder receives cloaked regions; the production implementation is the
// database server (directly in-process, or via the wire protocol).
type Forwarder func(id uint64, region geo.Rect) error

// Config configures an Anonymizer.
type Config struct {
	// World bounds all locations. Required.
	World geo.Rect
	// Algorithm selects the cloaking algorithm (default AlgQuadtree).
	Algorithm Algorithm
	// PyramidHeight sets the space partition depth (default 10 → 512×512
	// bottom cells).
	PyramidHeight int
	// GridLevel is the fixed level for AlgGrid/AlgGridML (default 6).
	GridLevel int
	// PopGridCols/Rows set the exact-position index resolution used by
	// data-dependent algorithms (default 64×64).
	PopGridCols, PopGridRows int
	// Incremental enables Section 5.3 incremental evaluation: regions are
	// reused across updates while they remain valid. The region cache is
	// shard-local, so it never crosses a shard (or user) boundary.
	Incremental bool
	// Shards sets the number of lock stripes for per-user state, in
	// [1, MaxShards]. 1 (the default) reproduces the historical
	// fully-serialized anonymizer; set it near GOMAXPROCS for multicore
	// throughput. Results are bit-identical across shard counts.
	Shards int
	// BatchWorkers bounds the worker pool that parallelizes the cloaking
	// phase of BatchUpdate (0 = GOMAXPROCS, 1 = sequential reference
	// pipeline). Results are bit-identical across worker counts.
	BatchWorkers int
	// Forward receives every cloaked region. Optional; when nil regions are
	// only returned to the caller.
	Forward Forwarder
	// ForwardCtx, when set, replaces Forward on the direct (non-replay)
	// path and receives the request's context, so a traced update's
	// downstream UpdatePrivate call joins the same trace. Spill-queue
	// replays always go through Forward with a background context — the
	// originating request is long gone by then. Setting only ForwardCtx is
	// allowed; a Forward adapter is synthesized for the replay loop.
	ForwardCtx func(ctx context.Context, id uint64, region geo.Rect) error
	// ForwardQueue bounds the spill queue that absorbs forward failures:
	// when the downstream link is down, cloaked regions (never exact
	// locations — spilling does not weaken privacy) are parked and replayed
	// with backoff once the link recovers, and the user's update succeeds
	// instead of failing. 0 disables spilling: a forward failure fails the
	// update, the pre-queue behavior.
	ForwardQueue int
	// ForwardRetryBase/ForwardRetryMax bound the replay loop's exponential
	// backoff (defaults 100ms and 5s).
	ForwardRetryBase time.Duration
	ForwardRetryMax  time.Duration
	// ForwardBackpressure changes what a full spill queue means. Default
	// (false): the oldest queued region is evicted to make room — the
	// newest state survives, but an acknowledged update is silently lost.
	// True: the new update is refused with ErrOverloaded instead, so
	// nothing acknowledged is ever dropped and the pressure is pushed
	// back to the caller as a typed, retryable rejection. Updates for
	// users already queued still coalesce and succeed either way.
	ForwardBackpressure bool
	// Clock supplies the time for profile resolution (default time.Now).
	Clock func() time.Time
	// Tariff, when set, charges users per update as a function of their
	// current requirement — the paper's note that the anonymizer "may charge
	// the mobile users based on their required protection level".
	Tariff func(req privacy.Requirement) float64
	// Metrics is the registry the anonymizer registers its anon_* series
	// in. Optional; a private registry is created when nil, so
	// instrumentation is always live and Registry() always works.
	Metrics *obs.Registry
	// Tracer records pipeline-stage spans (admission → cloak → forward) for
	// traced requests — the *Ctx entry points. Optional; nil disables span
	// recording and the tracer is nil-safe, so an un-traced anonymizer pays
	// only nil checks.
	Tracer *trace.Tracer
}

// Stats aggregates anonymizer activity counters. Forwarded includes
// replayed regions; ForwardErrs counts every failed forward attempt,
// direct and replay alike.
type Stats struct {
	Registered  int
	Updates     uint64
	Queries     uint64
	Reused      uint64
	BestEffort  uint64
	Forwarded   uint64
	ForwardErrs uint64

	// Batch-pipeline counters: batches processed and requests served from a
	// shared descent instead of their own cloaking computation.
	Batches    uint64
	SharedHits uint64

	// Spill-queue counters (all zero when no forward queue is configured).
	Spilled    uint64 // regions parked in the replay queue
	Replayed   uint64 // spilled regions delivered after recovery
	Dropped    uint64 // oldest entries evicted from a full queue
	QueueDepth int    // regions currently awaiting replay
}

// Anonymizer is the trusted third party. All methods are safe for
// concurrent use.
type Anonymizer struct {
	cfg     Config
	workers int // resolved BatchWorkers

	shards []*shard

	// idxMu guards the spatial indices: concurrent cloaking readers, one
	// relocation writer. Acquired after a shard mutex, never before one —
	// the lockorder pass enforces the rank annotation below.
	idxMu   sync.RWMutex //lint:lock index@1
	pyr     *pyramid.Pyramid
	pop     *grid.Index // nil when the algorithm is space-dependent
	cloaker cloak.Cloaker

	fq *forwardQueue // nil unless Forward + ForwardQueue configured

	ctr    counters
	met    *anonMetrics
	tracer *trace.Tracer
}

// Common errors.
var (
	ErrUnknownUser   = errors.New("anonymizer: unknown user")
	ErrPassive       = errors.New("anonymizer: user is passive at this time")
	ErrDuplicateUser = errors.New("anonymizer: user already registered")
	// ErrOverloaded rejects an update under forward backpressure: the
	// downstream link is behind, the spill queue is full, and accepting
	// the update would force a silent eviction. The caller should back
	// off and retry; queries are unaffected (they never forward).
	ErrOverloaded = errors.New("anonymizer: forward queue full")
)

// New builds an anonymizer.
func New(cfg Config) (*Anonymizer, error) {
	if !cfg.World.Valid() || cfg.World.Area() <= 0 {
		return nil, fmt.Errorf("anonymizer: invalid world %v", cfg.World)
	}
	if cfg.PyramidHeight <= 0 {
		cfg.PyramidHeight = 10
	}
	if cfg.GridLevel <= 0 {
		cfg.GridLevel = 6
	}
	if cfg.PopGridCols <= 0 {
		cfg.PopGridCols = 64
	}
	if cfg.PopGridRows <= 0 {
		cfg.PopGridRows = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > MaxShards {
		return nil, fmt.Errorf("anonymizer: %d shards exceeds the maximum %d", cfg.Shards, MaxShards)
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Forward == nil && cfg.ForwardCtx != nil {
		fc := cfg.ForwardCtx
		cfg.Forward = func(id uint64, region geo.Rect) error {
			return fc(context.Background(), id, region)
		}
	}
	pyr, err := pyramid.New(cfg.World, cfg.PyramidHeight)
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{
		cfg:     cfg,
		workers: cfg.BatchWorkers,
		pyr:     pyr,
		met:     newAnonMetrics(cfg.Metrics, cfg.Algorithm, cfg.Shards),
		tracer:  cfg.Tracer,
	}
	switch cfg.Algorithm {
	case AlgQuadtree:
		a.cloaker = &cloak.Quadtree{Pyr: pyr}
	case AlgGrid:
		a.cloaker = &cloak.Grid{Pyr: pyr, Level: cfg.GridLevel}
	case AlgGridML:
		a.cloaker = &cloak.Grid{Pyr: pyr, Level: cfg.GridLevel, MultiLevel: true}
	case AlgNaive, AlgMBR:
		pop, err := grid.New(cfg.World, cfg.PopGridCols, cfg.PopGridRows)
		if err != nil {
			return nil, err
		}
		a.pop = pop
		gp := cloak.GridPopulation{Index: pop}
		if cfg.Algorithm == AlgNaive {
			a.cloaker = &cloak.Naive{Pop: gp}
		} else {
			a.cloaker = &cloak.MBR{Pop: gp}
		}
	default:
		return nil, fmt.Errorf("anonymizer: unknown algorithm %v", cfg.Algorithm)
	}
	a.shards = make([]*shard, cfg.Shards)
	for i := range a.shards {
		var inc *cloak.Incremental
		if cfg.Incremental {
			inc = cloak.NewIncremental(a.cloaker, a.validateRegion)
			// Re-tighten a cached region once it holds 8× the required k:
			// keeps startup-era oversized regions from pinning quality of
			// service low forever, while still reusing aggressively in the
			// steady state.
			inc.MaxSlack = 8
		}
		a.shards[i] = newShard(inc)
	}
	a.met.shards.Set(float64(cfg.Shards))
	a.met.batchWorkers.Set(float64(a.workers))
	if cfg.Forward != nil && cfg.ForwardQueue > 0 {
		a.fq = newForwardQueue(cfg.Forward, cfg.ForwardQueue,
			cfg.ForwardRetryBase, cfg.ForwardRetryMax, a.met, cfg.ForwardBackpressure)
	}
	return a, nil
}

// Close stops the forward replay loop, abandoning anything still queued.
// It is a no-op without a forward queue and safe to call more than once.
func (a *Anonymizer) Close() {
	if a.fq != nil {
		a.fq.close()
	}
}

// forward delivers one cloaked region downstream. With a spill queue
// configured a failure parks the region for replay and the update still
// succeeds; per-user ordering is preserved by coalescing into an already
// queued entry instead of letting a newer region overtake it on the
// direct path. Without a queue the error is returned, failing the update.
// The context rides along to ForwardCtx so the downstream call can join
// the request's trace; spill replays never see it (forwardQueue uses the
// plain Forward adapter).
func (a *Anonymizer) forward(ctx context.Context, id uint64, region geo.Rect) error {
	if a.fq != nil && a.fq.enqueueIfPending(id, region) {
		return nil
	}
	var err error
	if a.cfg.ForwardCtx != nil {
		err = a.cfg.ForwardCtx(ctx, id, region)
	} else {
		err = a.cfg.Forward(id, region)
	}
	if err == nil {
		a.ctr.forwarded.Add(1)
		a.met.forwarded.Inc()
		return nil
	}
	a.ctr.forwardErrs.Add(1)
	a.met.forwardErrs.Inc()
	if a.fq != nil {
		if a.fq.add(id, region) {
			return nil
		}
		// Backpressure: the queue is full and refusing work. The update
		// fails typed instead of evicting someone else's acknowledged
		// region.
		a.met.sheds.Inc()
		return ErrOverloaded
	}
	return err
}

// admitForward reports whether an update for id may enter the pipeline
// under forward backpressure. Always true without backpressure; under it,
// false once the spill queue is full — unless id already has a queued
// region the new one would coalesce into. Checking before cloaking keeps
// a shed update from paying for a cloak it cannot deliver.
func (a *Anonymizer) admitForward(id uint64) bool {
	return a.fq == nil || a.fq.admit(id)
}

// Saturated reports whether forward backpressure is on and the spill
// queue is full right now — the coarse signal wire handlers use to shed
// whole batches before paying for decode and cloaking. Always false
// without ForwardBackpressure.
func (a *Anonymizer) Saturated() bool {
	return a.fq != nil && a.fq.full()
}

// validateRegion re-checks a cached region against the live population. It
// reads the spatial indices without locking, so callers must hold the
// index lock (the incremental cloakers invoke it from inside the cloak
// phase, which runs under the read lock).
func (a *Anonymizer) validateRegion(region geo.Rect, req privacy.Requirement) (int, bool) {
	var count int
	if a.pop != nil {
		count = a.pop.Count(region)
	} else {
		count = a.pyramidCount(region)
	}
	return count, count >= req.K
}

// pyramidCount counts users in an arbitrary rectangle from pyramid data by
// recursive descent: cells fully inside the region contribute their whole
// count, disjoint cells are skipped, and partially covered bottom cells are
// excluded. The count is therefore a conservative lower bound — exactly
// what k-anonymity validation needs — and costs O(perimeter) cells instead
// of O(area), which keeps incremental validation cheaper than recloaking.
func (a *Anonymizer) pyramidCount(region geo.Rect) int {
	return a.pyramidCountRec(pyramid.Cell{}, region)
}

func (a *Anonymizer) pyramidCountRec(c pyramid.Cell, region geo.Rect) int {
	r := a.pyr.Rect(c)
	if !region.Intersects(r) {
		return 0
	}
	if region.ContainsRect(r) {
		return a.pyr.Count(c)
	}
	if c.Level == a.pyr.Height()-1 {
		return 0 // partially covered bottom cell: conservative exclude
	}
	if a.pyr.Count(c) == 0 {
		return 0
	}
	sum := 0
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			sum += a.pyramidCountRec(c.Child(dx, dy), region)
		}
	}
	return sum
}

// StoresExactLocations reports whether the configured algorithm forces the
// anonymizer to keep exact positions (data-dependent family).
func (a *Anonymizer) StoresExactLocations() bool { return !a.cfg.Algorithm.spaceDependent() }

// Algorithm returns the configured algorithm.
func (a *Anonymizer) Algorithm() Algorithm { return a.cfg.Algorithm }

// Shards returns the configured shard count.
func (a *Anonymizer) Shards() int { return len(a.shards) }

// BatchWorkers returns the resolved batch worker-pool size.
func (a *Anonymizer) BatchWorkers() int { return a.workers }

// Register adds a user with her initial privacy profile in active mode.
// Her location becomes known to the anonymizer on her first Update.
func (a *Anonymizer) Register(id uint64, profile *privacy.Profile) error {
	if profile == nil {
		return fmt.Errorf("anonymizer: nil profile for user %d", id)
	}
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.profiles[id]; dup {
		return ErrDuplicateUser
	}
	s.profiles[id] = profile
	s.modes[id] = privacy.Active
	a.met.registered.Set(float64(a.ctr.registered.Add(1)))
	return nil
}

// UpdateProfile replaces a user's profile ("mobile users have the ability
// to change their privacy profiles at any time").
func (a *Anonymizer) UpdateProfile(id uint64, profile *privacy.Profile) error {
	if profile == nil {
		return fmt.Errorf("anonymizer: nil profile for user %d", id)
	}
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.profiles[id]; !ok {
		return ErrUnknownUser
	}
	s.profiles[id] = profile
	if s.inc != nil {
		s.inc.Invalidate(id)
	}
	return nil
}

// SetMode switches a user between passive, active and query modes. A
// passive user's location is dropped from all indices.
func (a *Anonymizer) SetMode(id uint64, m privacy.Mode) error {
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.profiles[id]; !ok {
		return ErrUnknownUser
	}
	prev := s.modes[id]
	s.modes[id] = m
	if m == privacy.Passive && prev != privacy.Passive {
		a.dropLocation(s, id)
	}
	return nil
}

// Mode returns the user's current mode.
func (a *Anonymizer) Mode(id uint64) (privacy.Mode, error) {
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.modes[id]
	if !ok {
		return 0, ErrUnknownUser
	}
	return m, nil
}

// Deregister removes a user entirely.
func (a *Anonymizer) Deregister(id uint64) bool {
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.profiles[id]; !ok {
		return false
	}
	a.dropLocation(s, id)
	delete(s.profiles, id)
	delete(s.modes, id)
	a.met.registered.Set(float64(a.ctr.registered.Add(-1)))
	return true
}

// dropLocation removes a user from the spatial indices and her shard's
// incremental cache. The shard mutex is held by the caller.
func (a *Anonymizer) dropLocation(s *shard, id uint64) {
	a.idxMu.Lock()
	a.pyr.Remove(id)
	if a.pop != nil {
		a.pop.Delete(id)
	}
	tracked := a.pyr.Len()
	a.idxMu.Unlock()
	a.met.tracked.Set(float64(tracked))
	if s.inc != nil {
		s.inc.Invalidate(id)
	}
}

// Update processes an exact location update from an active user: the
// location refreshes the internal indices, is cloaked under the
// requirement active right now, and the region is forwarded downstream.
func (a *Anonymizer) Update(id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(context.Background(), id, loc, false)
}

// UpdateCtx is Update under a context: traced requests record the
// admission → cloak → forward stages as spans.
func (a *Anonymizer) UpdateCtx(ctx context.Context, id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(ctx, id, loc, false)
}

// CloakQuery cloaks a location for a query the user is about to issue
// (query mode): identical pipeline, counted separately in the stats.
func (a *Anonymizer) CloakQuery(id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(context.Background(), id, loc, true)
}

// CloakQueryCtx is CloakQuery under a context (trace).
func (a *Anonymizer) CloakQueryCtx(ctx context.Context, id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(ctx, id, loc, true)
}

// ctxTraceID returns the sampled trace id carried by ctx, 0 when none.
func ctxTraceID(ctx context.Context) uint64 {
	if sc, ok := trace.FromContext(ctx); ok && sc.Sampled() {
		return sc.TraceID
	}
	return 0
}

func (a *Anonymizer) process(ctx context.Context, id uint64, loc geo.Point, isQuery bool) (cloak.Result, error) {
	asp, _ := trace.Start(ctx, a.tracer, "anon_admit")
	if !loc.Valid() || !a.cfg.World.Contains(loc) {
		asp.End()
		return cloak.Result{}, fmt.Errorf("anonymizer: location %v outside world", loc)
	}
	s, si := a.shardFor(id)
	s.mu.Lock()
	profile, ok := s.profiles[id]
	if !ok {
		s.mu.Unlock()
		asp.End()
		return cloak.Result{}, ErrUnknownUser
	}
	if s.modes[id] == privacy.Passive {
		s.mu.Unlock()
		asp.End()
		return cloak.Result{}, ErrPassive
	}
	req, err := profile.At(a.cfg.Clock())
	if err != nil {
		// No entry covers the current time: the user is effectively passive.
		s.mu.Unlock()
		asp.End()
		return cloak.Result{}, fmt.Errorf("%w: %v", ErrPassive, err)
	}
	if asp.Recording() {
		asp.SetAttrs(trace.Int("k", int64(req.K)))
		asp.End()
	}
	if !isQuery && a.cfg.Forward != nil && !a.admitForward(id) {
		// Forward backpressure: the downstream link is behind and the spill
		// queue is full. Shed before touching the indices — the update will
		// not be deliverable, so cloaking it would only burn CPU the
		// overloaded tier needs.
		s.mu.Unlock()
		a.met.sheds.Inc()
		ssp, _ := trace.Start(ctx, a.tracer, "anon_shed")
		ssp.End()
		return cloak.Result{}, ErrOverloaded
	}

	// Refresh indices before cloaking so the user counts toward her own k —
	// a short exclusive write section, then cloak under the read lock so
	// other shards' descents proceed concurrently.
	a.idxMu.Lock()
	a.pyr.Upsert(id, loc)
	if a.pop != nil {
		a.pop.Upsert(id, loc)
	}
	tracked := a.pyr.Len()
	a.idxMu.Unlock()
	a.met.tracked.Set(float64(tracked))

	t0 := time.Now()
	csp, _ := trace.Start(ctx, a.tracer, "anon_cloak")
	a.idxMu.RLock()
	var res cloak.Result
	if s.inc != nil {
		res = s.inc.Cloak(id, loc, req) //lint:sanitized cloaking boundary: the k-anonymous region replaces the exact point
	} else {
		res = a.cloaker.Cloak(id, loc, req) //lint:sanitized cloaking boundary: the k-anonymous region replaces the exact point
	}
	a.idxMu.RUnlock()
	if csp.Recording() {
		reused := int64(0)
		if res.Reused {
			reused = 1
		}
		csp.SetAttrs(
			trace.Str("alg", a.cfg.Algorithm.String()),
			trace.Int("achieved_k", int64(res.K)),
			trace.Int("reused", reused))
		csp.End()
		a.met.cloakLat.SetExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	}
	a.met.cloakLat.Since(t0)
	a.met.observeResult(res)
	a.met.shardOps[si].Inc()

	if isQuery {
		a.ctr.queries.Add(1)
		a.met.queries.Inc()
	} else {
		a.ctr.updates.Add(1)
		a.met.updates.Inc()
	}
	if res.Reused {
		a.ctr.reused.Add(1)
	}
	if res.BestEffort() {
		a.ctr.bestEffort.Add(1)
	}
	a.met.setReuseRate(&a.ctr)
	if a.cfg.Tariff != nil {
		s.charges[id] += a.cfg.Tariff(req)
	}
	s.mu.Unlock()

	// A reused region is byte-identical to what the server already stores,
	// so incremental mode also saves the downstream message — half of the
	// Section 5.3 win.
	if a.cfg.Forward != nil && !res.Reused {
		fsp, fctx := trace.Start(ctx, a.tracer, "anon_forward")
		err := a.forward(fctx, id, res.Region)
		fsp.End()
		if err != nil {
			return res, fmt.Errorf("anonymizer: forward failed: %w", err)
		}
	}
	return res, nil
}

// Charges returns the accumulated fees of a user under the configured
// tariff.
func (a *Anonymizer) Charges(id uint64) float64 {
	s, _ := a.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.charges[id]
}

// Stats returns a snapshot of the activity counters, spill queue included.
func (a *Anonymizer) Stats() Stats {
	st := Stats{
		Registered:  int(a.ctr.registered.Load()),
		Updates:     a.ctr.updates.Load(),
		Queries:     a.ctr.queries.Load(),
		Reused:      a.ctr.reused.Load(),
		BestEffort:  a.ctr.bestEffort.Load(),
		Forwarded:   a.ctr.forwarded.Load(),
		ForwardErrs: a.ctr.forwardErrs.Load(),
		Batches:     a.ctr.batches.Load(),
		SharedHits:  a.ctr.sharedHits.Load(),
	}
	if a.fq != nil {
		qs := a.fq.snapshot()
		st.Spilled = qs.spilled
		st.Replayed = qs.replayed
		st.Dropped = qs.dropped
		st.QueueDepth = qs.depth
		// Replayed regions did reach the server; replay failures are
		// forward failures like any other.
		st.Forwarded += qs.replayed
		st.ForwardErrs += qs.errs
	}
	return st
}

// Population returns the number of users currently tracked in the spatial
// indices (those that sent at least one update while non-passive).
func (a *Anonymizer) Population() int {
	a.idxMu.RLock()
	defer a.idxMu.RUnlock()
	return a.pyr.Len()
}
