package track

import (
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

var world = geo.R(0, 0, 1, 1)

func TestNewLinkerValidation(t *testing.T) {
	if _, err := NewLinker(-1); err == nil {
		t.Error("negative maxSpeed accepted")
	}
}

func TestLinkerBasics(t *testing.T) {
	l, err := NewLinker(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Feasible(); ok {
		t.Error("feasible before first observation")
	}
	r1 := geo.R(0.2, 0.2, 0.4, 0.4)
	if f := l.Observe(r1); !f.Eq(r1) {
		t.Errorf("first feasible = %v, want the region", f)
	}
	// Second region far to the right, reachable only in its left sliver.
	r2 := geo.R(0.45, 0.2, 0.65, 0.4)
	f := l.Observe(r2)
	want := geo.R(0.45, 0.2, 0.5, 0.4) // r2 ∩ r1.Expand(0.1)
	if !f.Eq(want) {
		t.Errorf("feasible = %v, want %v", f, want)
	}
	l.Reset()
	if _, ok := l.Feasible(); ok {
		t.Error("feasible after reset")
	}
}

func TestLinkerResetsOnImpossibleJump(t *testing.T) {
	l, _ := NewLinker(0.01)
	l.Observe(geo.R(0, 0, 0.1, 0.1))
	far := geo.R(0.8, 0.8, 0.9, 0.9)
	if f := l.Observe(far); !f.Eq(far) {
		t.Errorf("impossible jump should reset to the region, got %v", f)
	}
}

func TestEvaluateEmptyAndSingle(t *testing.T) {
	rep, err := Evaluate(nil, 0.1)
	if err != nil || rep.Steps != 0 {
		t.Errorf("empty eval = %+v, %v", rep, err)
	}
	rep, err = Evaluate([]Step{{
		Region: geo.R(0, 0, 0.2, 0.2), TrueLoc: geo.Pt(0.1, 0.1),
	}}, 0.1)
	if err != nil || rep.MeanShrink != 1 || rep.ContainmentViolations != 0 {
		t.Errorf("single eval = %+v", rep)
	}
}

// The linking attack exposes a different weakness ordering than the
// snapshot attack (experiment E13's core finding):
//
//   - naive regions move smoothly with the user, so intersection gains
//     almost nothing (shrink ≈ 1) — but the region center IS the user, so
//     the guess error is near zero anyway: the leak is instantaneous;
//   - quadtree cells are static, so the feasible set collapses to a
//     boundary sliver every time the user crosses into a new cell
//     (transition leakage), yet the guess error stays far above naive's;
//   - a frozen (incrementally reused) region leaks nothing to linking:
//     shrink stays exactly 1.
func TestLinkingSeparatesCloakers(t *testing.T) {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 4000, World: world, Dist: mobility.Uniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := grid.New(world, 32, 32)
	pyr, _ := pyramid.New(world, 8)
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		pyr.Insert(uint64(i+1), p)
	}
	pop := cloak.GridPopulation{Index: gi}
	req := privacy.Requirement{K: 40}
	const speed = 0.004
	uid := uint64(4001)
	pyr.Insert(uid, geo.Pt(0.3, 0.5))
	gi.Upsert(uid, geo.Pt(0.3, 0.5))

	trajectory := func(c cloak.Cloaker) []Step {
		var steps []Step
		loc := geo.Pt(0.3, 0.5)
		for i := 0; i < 40; i++ {
			loc = world.ClampPoint(geo.Pt(loc.X+speed, loc.Y))
			pyr.Move(uid, loc)
			gi.Upsert(uid, loc)
			res := c.Cloak(uid, loc, req)
			steps = append(steps, Step{Region: res.Region, TrueLoc: loc})
		}
		return steps
	}

	naiveRep, err := Evaluate(trajectory(&cloak.Naive{Pop: pop}), speed*1.01)
	if err != nil {
		t.Fatal(err)
	}
	quadRep, err := Evaluate(trajectory(&cloak.Quadtree{Pyr: pyr}), speed*1.01)
	if err != nil {
		t.Fatal(err)
	}

	if naiveRep.ContainmentViolations != 0 || quadRep.ContainmentViolations != 0 {
		t.Fatalf("containment violated: naive=%d quad=%d",
			naiveRep.ContainmentViolations, quadRep.ContainmentViolations)
	}
	// Naive: linking gains nothing (the region tracks the user)...
	if naiveRep.MeanShrink < 0.9 {
		t.Errorf("naive shrink = %v, expected ≈1 (region moves with the user)", naiveRep.MeanShrink)
	}
	// ...but the instantaneous leak makes tracking trivial regardless.
	if naiveRep.MeanGuessError > 0.01 {
		t.Errorf("naive guess error = %v, expected ≈0", naiveRep.MeanGuessError)
	}
	// Quadtree: transition leakage shrinks the feasible set below the cell...
	if quadRep.MeanShrink > 0.95 {
		t.Errorf("quadtree shrink = %v, expected visible transition leakage", quadRep.MeanShrink)
	}
	// ...while absolute tracking stays far worse than against naive.
	if quadRep.MeanGuessError < 5*naiveRep.MeanGuessError {
		t.Errorf("quadtree guess error %v should far exceed naive %v",
			quadRep.MeanGuessError, naiveRep.MeanGuessError)
	}

	// A frozen region (what incremental reuse produces) defeats linking
	// completely: shrink is exactly 1.
	frozen := geo.R(0.3, 0.4, 0.5, 0.6)
	var frozenSteps []Step
	loc := geo.Pt(0.35, 0.5)
	for i := 0; i < 20; i++ {
		loc = frozen.ClampPoint(geo.Pt(loc.X+speed, loc.Y))
		frozenSteps = append(frozenSteps, Step{Region: frozen, TrueLoc: loc})
	}
	frozenRep, err := Evaluate(frozenSteps, speed*1.01)
	if err != nil {
		t.Fatal(err)
	}
	if frozenRep.MeanShrink != 1 || frozenRep.ContainmentViolations != 0 {
		t.Errorf("frozen-region report = %+v, want shrink exactly 1", frozenRep)
	}
}

// The true location always stays inside the feasible set when the speed
// bound is honest (the attack is sound) — checked on random walks.
func TestLinkingSoundness(t *testing.T) {
	const speed = 0.01
	l, _ := NewLinker(speed * 1.42) // L∞ dilation covers Euclidean steps with slack
	loc := geo.Pt(0.5, 0.5)
	for i := 0; i < 200; i++ {
		dx := speed * float64((i%3)-1)
		dy := speed * float64(((i/3)%3)-1)
		loc = world.ClampPoint(geo.Pt(loc.X+dx, loc.Y+dy))
		region := geo.RectAround(loc, 0.05).Clip(world)
		f := l.Observe(region)
		if !f.Contains(loc) {
			t.Fatalf("step %d: feasible %v excludes true %v", i, f, loc)
		}
	}
}
