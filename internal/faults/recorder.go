package faults

import (
	"net"
	"sync"
)

// Recorder wraps a net.Conn and records the message-type byte of every
// protocol frame crossing it, per direction. The privacy e2e tests use it
// as the runtime counterpart of the static privleak pass: wrap the
// anonymizer→database link and assert that no exact-location message type
// ever appears in the trace. Frame boundaries are recovered from the wire
// format's length prefix ([u32 length][type][payload]), so the recorder
// sees exactly the frames the peer will decode.
type Recorder struct {
	net.Conn

	mu     sync.Mutex
	rd, wr typeTracker
}

// Record wraps conn.
func Record(conn net.Conn) *Recorder { return &Recorder{Conn: conn} }

// Read implements net.Conn.
func (r *Recorder) Read(p []byte) (int, error) {
	n, err := r.Conn.Read(p)
	r.mu.Lock()
	r.rd.feed(p[:n])
	r.mu.Unlock()
	return n, err
}

// Write implements net.Conn.
func (r *Recorder) Write(p []byte) (int, error) {
	n, err := r.Conn.Write(p)
	r.mu.Lock()
	r.wr.feed(p[:n])
	r.mu.Unlock()
	return n, err
}

// Reads returns the message types of the frames read so far, in order.
func (r *Recorder) Reads() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.rd.types...)
}

// Writes returns the message types of the frames written so far, in order.
func (r *Recorder) Writes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.wr.types...)
}

// typeTracker walks a [u32 length][type][payload] stream and collects the
// type byte of each frame.
type typeTracker struct {
	hdr       [4]byte
	hdrN      int
	remaining int  // body bytes left in the current frame
	wantType  bool // the next body byte is the frame's type byte
	types     []byte
}

func (t *typeTracker) feed(p []byte) {
	for len(p) > 0 {
		if t.remaining == 0 {
			k := copy(t.hdr[t.hdrN:], p)
			t.hdrN += k
			p = p[k:]
			if t.hdrN == 4 {
				t.remaining = int(uint32(t.hdr[0]) | uint32(t.hdr[1])<<8 |
					uint32(t.hdr[2])<<16 | uint32(t.hdr[3])<<24)
				t.hdrN = 0
				t.wantType = true
			}
			continue
		}
		if t.wantType {
			t.types = append(t.types, p[0])
			t.wantType = false
		}
		k := t.remaining
		if k > len(p) {
			k = len(p)
		}
		t.remaining -= k
		p = p[k:]
	}
}
