package protocol

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/server"
)

var world = geo.R(0, 0, 1, 1)

func quiet(string, ...interface{}) {}

// threeTier brings up the full Figure 1 deployment over loopback TCP:
// database service, anonymizer service forwarding to it through a
// DatabaseClient, and clients for both.
func threeTier(t *testing.T) (*AnonymizerClient, *DatabaseClient, func()) {
	t.Helper()
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	fwdClient, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	anon, err := anonymizer.New(anonymizer.Config{
		World:        world,
		Forward:      fwdClient.UpdatePrivate,
		Shards:       4, // exercise the sharded pipeline over the wire
		BatchWorkers: 2,
		Clock:        func() time.Time { return time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		t.Fatal(err)
	}
	userClient, err := DialAnonymizer(anonSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	adminClient, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		userClient.Close()
		adminClient.Close()
		fwdClient.Close()
		anonSvc.Close()
		dbSvc.Close()
	}
	return userClient, adminClient, cleanup
}

func TestEndToEndThreeTier(t *testing.T) {
	user, admin, cleanup := threeTier(t)
	defer cleanup()

	// Load public data through the admin connection.
	pois, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 500, World: world, Dist: mobility.Uniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]server.PublicObject, len(pois))
	for i, p := range pois {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "gas", Loc: p}
	}
	if err := admin.LoadStationary(objs); err != nil {
		t.Fatal(err)
	}

	// Register mobile users and stream location updates through the
	// anonymizer.
	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 300, World: world, Dist: mobility.Uniform, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 10})
	for i, p := range userPts {
		id := uint64(i + 1)
		if err := user.Register(id, prof); err != nil {
			t.Fatal(err)
		}
		res, err := user.Update(id, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Region.Contains(p) {
			t.Fatalf("cloaked region excludes user %d", id)
		}
		if !res.SatisfiedK && i >= 10 {
			t.Fatalf("k unsatisfied for user %d with population %d", id, i+1)
		}
	}

	// The server now tracks everyone.
	stationary, private, err := admin.Stats()
	if err != nil || stationary != 500 || private != 300 {
		t.Fatalf("Stats = %d, %d, %v", stationary, private, err)
	}

	// Private NN query end to end: cloak, query, refine, verify vs brute.
	uid := uint64(42)
	loc := userPts[uid-1]
	cres, err := user.CloakQuery(uid, loc)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := admin.PrivateNN(server.PrivateNNQuery{Region: cres.Region, Class: "gas"})
	if err != nil {
		t.Fatal(err)
	}
	ans, ok := server.RefineNN(loc, nn.Candidates)
	if !ok {
		t.Fatal("no NN candidates")
	}
	bestD := math.Inf(1)
	for _, p := range pois {
		if d := loc.Dist2(p); d < bestD {
			bestD = d
		}
	}
	if loc.Dist2(ans.Loc) != bestD {
		t.Fatal("refined networked NN is not the true NN")
	}

	// Private range query end to end.
	cands, err := admin.PrivateRange(server.PrivateRangeQuery{
		Region: cres.Region, Radius: 0.1, Class: "gas",
	})
	if err != nil {
		t.Fatal(err)
	}
	refined := server.RefineRange(loc, 0.1, cands)
	want := 0
	for _, p := range pois {
		if loc.Dist(p) <= 0.1 {
			want++
		}
	}
	if len(refined) != want {
		t.Fatalf("networked range: %d, brute %d", len(refined), want)
	}

	// Public probabilistic count.
	area := geo.R(0.25, 0.25, 0.75, 0.75)
	cnt, err := admin.PublicCount(area)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0
	for _, p := range userPts {
		if area.Contains(p) {
			truth++
		}
	}
	if truth < cnt.Answer.Lo || truth > cnt.Answer.Hi {
		t.Fatalf("networked count interval [%d,%d] misses %d", cnt.Answer.Lo, cnt.Answer.Hi, truth)
	}
	if len(cnt.Answer.PDF) == 0 {
		t.Fatal("PDF not transferred")
	}

	// Public NN (e-coupon).
	pnn, err := admin.PublicNN(server.PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pnn.Candidates) == 0 || pnn.Best.ID == 0 {
		t.Fatalf("networked public NN = %+v", pnn)
	}
	sum := 0.0
	for _, c := range pnn.Candidates {
		sum += c.Prob
		if _, ok := pnn.CandidateRegions[c.ID]; !ok {
			t.Fatal("candidate region missing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("networked NN probabilities sum to %v", sum)
	}

	// Mode switching and deregistration over the wire.
	if err := user.SetMode(uid, privacy.Passive); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Update(uid, loc); !errors.Is(err, ErrRemote) {
		t.Fatalf("passive update should fail remotely: %v", err)
	}
	if err := user.Deregister(uid); err != nil {
		t.Fatal(err)
	}
	if err := admin.RemovePrivate(uid); err != nil {
		t.Fatal(err)
	}
	_, private, _ = admin.Stats()
	if private != 299 {
		t.Fatalf("private count after removal = %d", private)
	}
}

func TestEndToEndErrorPropagation(t *testing.T) {
	user, admin, cleanup := threeTier(t)
	defer cleanup()
	// Update for unknown user: remote error.
	if _, err := user.Update(77, geo.Pt(0.5, 0.5)); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown user update = %v", err)
	}
	// Invalid query region: remote error.
	if _, err := admin.PrivateNN(server.PrivateNNQuery{
		Region: geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)},
	}); !errors.Is(err, ErrRemote) {
		t.Errorf("invalid region query = %v", err)
	}
}

func BenchmarkEndToEndUpdate(b *testing.B) {
	srv, _ := server.New(server.Config{World: world})
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		b.Fatal(err)
	}
	defer dbSvc.Close()
	fwd, _ := DialDatabase(dbSvc.Addr())
	defer fwd.Close()
	anon, _ := anonymizer.New(anonymizer.Config{World: world, Forward: fwd.UpdatePrivate})
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		b.Fatal(err)
	}
	defer anonSvc.Close()
	user, _ := DialAnonymizer(anonSvc.Addr())
	defer user.Close()

	prof := privacy.Constant(privacy.Requirement{K: 5})
	pts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 1000, World: world, Dist: mobility.Uniform, Seed: 1,
	})
	for i := range pts {
		user.Register(uint64(i+1), prof)
		user.Update(uint64(i+1), pts[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%1000) + 1
		if _, err := user.Update(id, pts[id-1]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestContinuousCountOverTheWire(t *testing.T) {
	user, admin, cleanup := threeTier(t)
	defer cleanup()

	prof := privacy.Constant(privacy.Requirement{K: 1})
	if err := user.Register(1, prof); err != nil {
		t.Fatal(err)
	}

	area := geo.R(0.2, 0.2, 0.6, 0.6)
	qid, err := admin.RegisterContinuousCount(area)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := admin.ContinuousCount(qid)
	if err != nil || ans.Hi != 0 {
		t.Fatalf("initial answer = %+v, %v", ans, err)
	}
	// The user enters the monitored area (k=1: degenerate region inside).
	if _, err := user.Update(1, geo.Pt(0.4, 0.4)); err != nil {
		t.Fatal(err)
	}
	ans, err = admin.ContinuousCount(qid)
	if err != nil || ans.Lo != 1 || ans.Hi != 1 {
		t.Fatalf("after enter = %+v, %v", ans, err)
	}
	// She leaves.
	if _, err := user.Update(1, geo.Pt(0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	ans, err = admin.ContinuousCount(qid)
	if err != nil || ans.Hi != 0 {
		t.Fatalf("after leave = %+v, %v", ans, err)
	}
	if err := admin.UnregisterContinuousCount(qid); err != nil {
		t.Fatal(err)
	}
	if err := admin.UnregisterContinuousCount(qid); !errors.Is(err, ErrRemote) {
		t.Fatalf("double unregister = %v", err)
	}
	if _, err := admin.ContinuousCount(qid); !errors.Is(err, ErrRemote) {
		t.Fatalf("read after unregister = %v", err)
	}
	// Moving public objects over the wire.
	if err := admin.UpdateMoving(500, geo.Pt(0.3, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := admin.UpdateMoving(500, geo.Pt(5, 5)); !errors.Is(err, ErrRemote) {
		t.Fatalf("out-of-world moving update = %v", err)
	}
}

func TestBatchUpdateOverTheWire(t *testing.T) {
	user, admin, cleanup := threeTier(t)
	defer cleanup()

	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 200, World: world, Dist: mobility.Gaussian, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 10})
	reqs := make([]cloak.Request, len(pts))
	for i, p := range pts {
		id := uint64(i + 1)
		if err := user.Register(id, prof); err != nil {
			t.Fatal(err)
		}
		reqs[i] = cloak.Request{ID: id, Loc: p}
	}
	// One entry is bogus (unknown user) and must come back nil.
	reqs = append(reqs, cloak.Request{ID: 9999, Loc: geo.Pt(0.5, 0.5)})

	results, err := user.BatchUpdate(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i := 0; i < len(pts); i++ {
		if results[i] == nil {
			t.Fatalf("valid request %d returned nil", i)
		}
		if !results[i].Region.Contains(pts[i]) {
			t.Fatalf("batch region %d excludes the user", i)
		}
	}
	if results[len(results)-1] != nil {
		t.Fatal("bogus request did not return nil")
	}
	// The server received everyone.
	_, private, err := admin.Stats()
	if err != nil || private != len(pts) {
		t.Fatalf("server tracks %d users, want %d (%v)", private, len(pts), err)
	}
}

// TestWireTraceNeverCarriesExactLocations is the runtime counterpart of
// the static privleak pass: it records every frame's message type on the
// anonymizer→database link and asserts that no exact-location message
// (MsgUpdate, MsgBatchUpdate, MsgCloakQuery) ever crosses it — only
// cloaked-region traffic (MsgUpdatePrivate) does. The user→anonymizer
// link is recorded too as a sensitivity control: the same recorder MUST
// see MsgUpdate there, proving the assertion would catch a leak.
func TestWireTraceNeverCarriesExactLocations(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer dbSvc.Close()

	// The anonymizer's downstream connection, recorded.
	var dbLink *faults.Recorder
	fwd, err := DialDatabase(dbSvc.Addr(), WithDialer(func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		dbLink = faults.Record(conn)
		return dbLink, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	anon, err := anonymizer.New(anonymizer.Config{World: world, Forward: fwd.UpdatePrivate})
	if err != nil {
		t.Fatal(err)
	}
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()

	// The user's connection to the anonymizer, also recorded.
	var userLink *faults.Recorder
	user, err := DialAnonymizer(anonSvc.Addr(), WithDialer(func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		userLink = faults.Record(conn)
		return userLink, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()

	// Drive every exact-location path: per-user updates, cloak queries and
	// a batch, all of which forward cloaked regions downstream.
	prof := privacy.Constant(privacy.Requirement{K: 2})
	for id := uint64(1); id <= 5; id++ {
		if err := user.Register(id, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := user.Update(id, geo.Pt(0.1*float64(id), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := user.CloakQuery(3, geo.Pt(0.3, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := user.BatchUpdate([]cloak.Request{
		{ID: 1, Loc: geo.Pt(0.15, 0.5)},
		{ID: 2, Loc: geo.Pt(0.25, 0.5)},
	}); err != nil {
		t.Fatal(err)
	}

	// The untrusted link never carries an exact-location message.
	exact := map[byte]bool{MsgUpdate: true, MsgBatchUpdate: true, MsgCloakQuery: true}
	trace := dbLink.Writes()
	if len(trace) == 0 {
		t.Fatal("database link recorded no frames; the recorder is not on the forwarding path")
	}
	forwarded := 0
	for _, typ := range trace {
		if exact[typ] {
			t.Fatalf("exact-location message %s crossed the anonymizer→database link (trace %v)",
				MessageName(typ), trace)
		}
		if typ == MsgUpdatePrivate {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Fatalf("no MsgUpdatePrivate on the database link; trace %v", trace)
	}

	// Sensitivity control: the trusted ingress DOES carry them, so the
	// assertion above is capable of failing.
	sawUpdate, sawBatch := false, false
	for _, typ := range userLink.Writes() {
		sawUpdate = sawUpdate || typ == MsgUpdate
		sawBatch = sawBatch || typ == MsgBatchUpdate
	}
	if !sawUpdate || !sawBatch {
		t.Fatalf("user link trace missed MsgUpdate/MsgBatchUpdate (update %v, batch %v): recorder cannot see frame types",
			sawUpdate, sawBatch)
	}
}

func TestAnonStatsOverTheWire(t *testing.T) {
	user, _, cleanup := threeTier(t)
	defer cleanup()
	prof := privacy.Constant(privacy.Requirement{K: 1})
	user.Register(1, prof)
	user.Update(1, geo.Pt(0.5, 0.5))
	user.CloakQuery(1, geo.Pt(0.5, 0.5))
	st, err := user.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Registered != 1 || st.Updates != 1 || st.Queries != 1 {
		t.Errorf("wire stats = %+v", st)
	}
	if st.Forwarded != 2 {
		t.Errorf("Forwarded = %d, want 2 (update + cloak query)", st.Forwarded)
	}

	// Batch-pipeline counters cross the wire too: two requests in the same
	// bottom cell with the same requirement share one descent.
	if _, err := user.BatchUpdate([]cloak.Request{
		{ID: 1, Loc: geo.Pt(0.5, 0.5)},
		{ID: 1, Loc: geo.Pt(0.5, 0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	st, err = user.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	if st.SharedHits != 1 {
		t.Errorf("SharedHits = %d, want 1", st.SharedHits)
	}
}
