package pyramid

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func mustNew(t testing.TB, h int) *Pyramid {
	t.Helper()
	p, err := New(world, h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(world, 0); err == nil {
		t.Error("height 0 accepted")
	}
	if _, err := New(world, MaxHeight+1); err == nil {
		t.Error("excessive height accepted")
	}
	if _, err := New(geo.Rect{}, 4); err == nil {
		t.Error("empty world accepted")
	}
}

func TestCellNesting(t *testing.T) {
	c := Cell{Level: 3, Col: 5, Row: 6}
	p := c.Parent()
	if p != (Cell{Level: 2, Col: 2, Row: 3}) {
		t.Errorf("Parent = %v", p)
	}
	if c.Parent().Child(1, 0) != c {
		t.Errorf("Child(1,0) of parent != c: %v", c.Parent().Child(1, 0))
	}
	root := Cell{}
	if root.Parent() != root {
		t.Error("root parent should be root")
	}
	if AncestorAt(c, 0) != root {
		t.Errorf("AncestorAt(0) = %v", AncestorAt(c, 0))
	}
	if AncestorAt(c, 3) != c {
		t.Error("AncestorAt(same level) should be identity")
	}
}

func TestCellAtAndRectRoundTrip(t *testing.T) {
	p := mustNew(t, 6)
	src := rng.New(3)
	for i := 0; i < 1000; i++ {
		pt := geo.Pt(src.Float64(), src.Float64())
		for l := 0; l < 6; l++ {
			c := p.CellAt(l, pt)
			r := p.Rect(c)
			if !r.Contains(pt) {
				t.Fatalf("cell %v rect %v does not contain %v", c, r, pt)
			}
		}
	}
	// Boundary clamping.
	c := p.CellAt(5, geo.Pt(1, 1))
	if c.Col != 31 || c.Row != 31 {
		t.Errorf("boundary point cell = %v", c)
	}
	c = p.CellAt(5, geo.Pt(-1, 2))
	if c.Col != 0 || c.Row != 31 {
		t.Errorf("outside point cell = %v", c)
	}
}

func TestCellArea(t *testing.T) {
	p := mustNew(t, 4)
	if a := p.CellArea(0); a != 1 {
		t.Errorf("level-0 area = %v", a)
	}
	if a := p.CellArea(3); a != 1.0/64 {
		t.Errorf("level-3 area = %v, want 1/64", a)
	}
	// CellArea must agree with Rect().Area().
	for l := 0; l < 4; l++ {
		r := p.Rect(Cell{Level: l, Col: 0, Row: 0})
		if got, want := r.Area(), p.CellArea(l); got < want*0.999 || got > want*1.001 {
			t.Errorf("level %d: Rect area %v != CellArea %v", l, got, want)
		}
	}
}

func TestInsertMoveRemove(t *testing.T) {
	p := mustNew(t, 5)
	if err := p.Insert(1, geo.Pt(0.1, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(1, geo.Pt(0.2, 0.2)); err == nil {
		t.Error("duplicate insert accepted")
	}
	if p.Len() != 1 {
		t.Error("Len after insert")
	}
	if got := p.Count(Cell{}); got != 1 {
		t.Errorf("root count = %d", got)
	}
	bottom := p.CellAt(4, geo.Pt(0.1, 0.1))
	if got := p.Count(bottom); got != 1 {
		t.Errorf("bottom count = %d", got)
	}
	// Move across cells.
	changed, err := p.Move(1, geo.Pt(0.9, 0.9))
	if err != nil || !changed {
		t.Fatalf("Move = %v, %v", changed, err)
	}
	if got := p.Count(bottom); got != 0 {
		t.Errorf("old bottom count after move = %d", got)
	}
	// Move within the same bottom cell.
	changed, err = p.Move(1, geo.Pt(0.905, 0.905))
	if err != nil || changed {
		t.Fatalf("intra-cell Move = %v, %v", changed, err)
	}
	if _, err := p.Move(99, geo.Pt(0.5, 0.5)); err == nil {
		t.Error("Move of unknown user accepted")
	}
	if !p.Remove(1) {
		t.Error("Remove existing returned false")
	}
	if p.Remove(1) {
		t.Error("Remove missing returned true")
	}
	if err := p.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUserCell(t *testing.T) {
	p := mustNew(t, 4)
	p.Insert(5, geo.Pt(0.3, 0.7))
	c, ok := p.UserCell(5)
	if !ok || c != p.CellAt(3, geo.Pt(0.3, 0.7)) {
		t.Errorf("UserCell = %v, %v", c, ok)
	}
	if _, ok := p.UserCell(6); ok {
		t.Error("UserCell of unknown user ok")
	}
}

func TestCountsMatchBrute(t *testing.T) {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 2000, World: world, Dist: mobility.Gaussian, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := mustNew(t, 6)
	for i, pt := range pts {
		if err := p.Insert(uint64(i+1), pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Count of each cell at level 3 matches a brute-force scan of its rect.
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			c := Cell{Level: 3, Col: col, Row: row}
			want := 0
			for _, pt := range pts {
				if p.CellAt(3, pt) == c {
					want++
				}
			}
			if got := p.Count(c); got != want {
				t.Fatalf("cell %v count %d, brute %d", c, got, want)
			}
		}
	}
}

func TestCountOutOfRangeCells(t *testing.T) {
	p := mustNew(t, 3)
	if p.Count(Cell{Level: -1}) != 0 {
		t.Error("negative level count")
	}
	if p.Count(Cell{Level: 9}) != 0 {
		t.Error("too-deep level count")
	}
	if p.Count(Cell{Level: 2, Col: 4, Row: 0}) != 0 {
		t.Error("out-of-range col count")
	}
}

func TestCountRegion(t *testing.T) {
	p := mustNew(t, 4)
	// Place one user in each of the four corner bottom cells.
	p.Insert(1, geo.Pt(0.01, 0.01))
	p.Insert(2, geo.Pt(0.99, 0.01))
	p.Insert(3, geo.Pt(0.01, 0.99))
	p.Insert(4, geo.Pt(0.99, 0.99))
	if got := p.CountRegion(3, 0, 0, 7, 7); got != 4 {
		t.Errorf("full region count = %d", got)
	}
	if got := p.CountRegion(3, 0, 0, 3, 3); got != 1 {
		t.Errorf("quadrant count = %d", got)
	}
	// Normalized (swapped) ranges and clamped out-of-range indices.
	if got := p.CountRegion(3, 7, 7, 0, 0); got != 4 {
		t.Errorf("swapped region count = %d", got)
	}
	if got := p.CountRegion(3, -5, -5, 20, 20); got != 4 {
		t.Errorf("clamped region count = %d", got)
	}
}

func TestRegionRect(t *testing.T) {
	p := mustNew(t, 3)
	r := p.RegionRect(2, 0, 0, 1, 1)
	if !r.Eq(geo.R(0, 0, 0.5, 0.5)) {
		t.Errorf("RegionRect = %v", r)
	}
	// Swapped range normalizes.
	r2 := p.RegionRect(2, 1, 1, 0, 0)
	if !r2.Eq(r) {
		t.Errorf("swapped RegionRect = %v", r2)
	}
}

func TestPropInvariantsUnderChurn(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		src := rng.New(seed)
		p, err := New(world, 5)
		if err != nil {
			return false
		}
		present := map[uint64]bool{}
		ops := int(opsRaw%400) + 50
		for i := 0; i < ops; i++ {
			id := uint64(src.Intn(40)) + 1
			pt := geo.Pt(src.Float64(), src.Float64())
			switch {
			case !present[id]:
				if p.Insert(id, pt) != nil {
					return false
				}
				present[id] = true
			case src.Float64() < 0.3:
				if !p.Remove(id) {
					return false
				}
				delete(present, id)
			default:
				if _, err := p.Move(id, pt); err != nil {
					return false
				}
			}
		}
		return p.checkInvariants() == nil && p.Len() == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCellString(t *testing.T) {
	if (Cell{Level: 2, Col: 1, Row: 3}).String() == "" {
		t.Error("empty cell string")
	}
}

func BenchmarkMove(b *testing.B) {
	p := mustNew(b, 10)
	src := rng.New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		p.Insert(uint64(i+1), geo.Pt(src.Float64(), src.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%n) + 1
		p.Move(id, geo.Pt(src.Float64(), src.Float64()))
	}
}

func BenchmarkCountRegion(b *testing.B) {
	p := mustNew(b, 8)
	src := rng.New(2)
	for i := 0; i < 10000; i++ {
		p.Insert(uint64(i+1), geo.Pt(src.Float64(), src.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CountRegion(7, 10, 10, 40, 40)
	}
}
