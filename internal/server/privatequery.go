package server

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
)

// RangeMode selects how the private range query builds its candidate set
// (Section 6.2.1, Figure 5a).
type RangeMode uint8

const (
	// RangeRounded is the exact semantics: an object is a candidate iff its
	// distance to the *nearest* point of the cloaked region is ≤ radius —
	// the "rounded rectangle" of the paper.
	RangeRounded RangeMode = iota
	// RangeMBR over-approximates the rounded rectangle by its minimum
	// bounding rectangle (the region expanded by radius on every side), the
	// simplification the paper prescribes for a real implementation. The
	// candidate set is a superset of RangeRounded's.
	RangeMBR
)

// String implements fmt.Stringer.
func (m RangeMode) String() string {
	switch m {
	case RangeRounded:
		return "rounded"
	case RangeMBR:
		return "mbr"
	default:
		return fmt.Sprintf("rangemode(%d)", uint8(m))
	}
}

// PrivateRangeQuery is a private query over public data: "find all <class>
// objects within Radius of my location", issued with a cloaked region
// instead of the location.
type PrivateRangeQuery struct {
	Region geo.Rect
	Radius float64
	// Class filters stationary objects ("" = all classes + moving objects).
	Class string
	Mode  RangeMode
}

// validate checks the query parameters; BatchQuery relies on this being
// exactly the check PrivateRange applies, so per-entry errors match the
// sequential path verbatim.
func (q PrivateRangeQuery) validate() error {
	if !q.Region.Valid() {
		return fmt.Errorf("server: invalid query region %v", q.Region)
	}
	if q.Radius < 0 || math.IsNaN(q.Radius) {
		return fmt.Errorf("server: invalid radius %g", q.Radius)
	}
	return nil
}

// PrivateRange executes the query and returns the candidate list: every
// public object that could be within Radius of *some* point of the region.
// The mobile user refines the list locally with RefineRange. The candidate
// set is complete by construction (invariant I5): an object within Radius
// of any point p of the region satisfies MinDist(obj, region) ≤ Radius and
// lies inside the expanded MBR the index is probed with.
func (s *Server) PrivateRange(q PrivateRangeQuery) ([]PublicObject, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	filter := q.Region.Expand(q.Radius)
	s.met.privateRangeQs.Inc()
	defer s.met.latPrivateRange.Since(time.Now())

	s.mu.RLock()
	defer s.mu.RUnlock()

	var out []PublicObject
	keep := func(id uint64, loc geo.Point, moving bool) {
		if q.Mode == RangeRounded && geo.MinDist(loc, q.Region) > q.Radius {
			return
		}
		o := s.resolveObjectLocked(id, loc, moving)
		if q.Class != "" && o.Class != q.Class {
			return
		}
		out = append(out, o)
	}
	items, visits := s.stationary.SearchVisits(filter, nil)
	for _, it := range items {
		keep(it.ID, it.Loc, false)
	}
	s.met.nodeVisits.Observe(float64(visits))
	if q.Class == "" {
		for _, m := range s.moving.Search(filter, nil) {
			keep(m.ID, m.Loc, true)
		}
	}
	// Canonical order: the answer is a set, and emitting it sorted makes
	// the single-server result bit-identical to a scatter/gather union of
	// per-shard results (and to the batch engine's shared-descent path).
	SortObjects(out)
	return out, nil
}

// PrivateNNQuery is a private nearest-neighbor query over public data:
// "find my nearest <class> object", issued with a cloaked region.
type PrivateNNQuery struct {
	Region geo.Rect
	// Class filters stationary objects ("" = all stationary classes).
	// Moving objects are excluded from NN queries: their answer would be
	// stale by the time the client refines it.
	Class string
}

// PrivateNNResult carries the candidate set and the filter statistics the
// experiments report.
type PrivateNNResult struct {
	// Candidates is guaranteed to contain the exact nearest neighbor of
	// every point of the query region (invariant I6).
	Candidates []PublicObject
	// SupersetSize is the candidate count before dominance pruning; the
	// difference to len(Candidates) measures what pruning buys (experiment
	// E5's ablation).
	SupersetSize int
}

// PrivateNN executes the query. The computation follows Figure 5b:
//
//  1. A sound superset via the min–max bound: browse objects by MinDist to
//     the region; any object whose MinDist exceeds T = min over seen
//     objects of MaxDist(object, region) can never be the nearest neighbor
//     of any point of the region (that minimizing object is closer
//     everywhere), so browsing stops there.
//  2. Pairwise bisector dominance pruning: object a is removed if some
//     object b is at least as close to *every* point of the region
//     (equivalently: to all four corners, since the half-plane of b's
//     bisector is convex). This eliminates objects like target A in
//     Figure 5b while provably never removing a true nearest neighbor.
func (s *Server) PrivateNN(q PrivateNNQuery) (PrivateNNResult, error) {
	if err := q.validate(); err != nil {
		return PrivateNNResult{}, err
	}
	s.met.privateNNQs.Inc()
	defer s.met.latPrivateNN.Since(time.Now())

	s.mu.RLock()
	defer s.mu.RUnlock()
	res, _ := s.privateNNLocked(q)
	return res, nil
}

// validate checks the query parameters (shared with BatchQuery).
func (q PrivateNNQuery) validate() error {
	if !q.Region.Valid() {
		return fmt.Errorf("server: invalid query region %v", q.Region)
	}
	return nil
}

// NNParts is the partial private-NN evaluation one data partition
// contributes: the objects that pass the local min–max filter, *unpruned*,
// plus the local bound they were filtered against. A single server is the
// degenerate case of one part over the whole dataset; the routing tier
// gathers one part per shard and finishes both through the same
// CombineNNParts, so the two paths cannot diverge. Candidates stay
// unpruned because the prune-or-not decision (maxPruneSet) depends on the
// *global* superset size, which no single partition knows.
type NNParts struct {
	// Bound is min MaxDist²(object, region) over every class-matching
	// object of the partition (+Inf when there is none).
	Bound float64
	// Candidates are the class-matching objects with
	// MinDist²(object, region) ≤ Bound, in browse order.
	Candidates []PublicObject
}

// PrivateNNParts evaluates the shard-local half of a private NN query:
// the min–max browse without the global finalize. The routing tier calls
// this on every shard owning a tile of the query region and combines the
// parts with CombineNNParts.
func (s *Server) PrivateNNParts(q PrivateNNQuery) (NNParts, error) {
	if err := q.validate(); err != nil {
		return NNParts{}, err
	}
	s.met.privateNNQs.Inc()
	defer s.met.latPrivateNN.Since(time.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	parts, _ := s.nnPartsLocked(q)
	return parts, nil
}

// nnPartsLocked is the browse half of the NN evaluation (step 1 of
// Figure 5b); the caller holds (at least) the read lock. The second
// return value is the R-tree node-visit count.
func (s *Server) nnPartsLocked(q PrivateNNQuery) (NNParts, int) {
	var cands []PublicObject

	browser := s.stationary.NewRectBrowser(q.Region)
	bound := math.Inf(1) // T = min MaxDist² seen so far
	for {
		d2, ok := browser.Peek2()
		if !ok || d2 > bound {
			break
		}
		it, _, _ := browser.Next()
		o := s.resolveObjectLocked(it.ID, it.Loc, false)
		if q.Class != "" && o.Class != q.Class {
			continue
		}
		if md := geo.MaxDist2(it.Loc, q.Region); md < bound {
			bound = md
		}
		cands = append(cands, o)
	}
	// The bound tightened as we browsed; drop entries admitted before the
	// final bound was known.
	kept := cands[:0]
	for _, o := range cands {
		if geo.MinDist2(o.Loc, q.Region) <= bound {
			kept = append(kept, o)
		}
	}
	visits := browser.Visited()
	s.met.nodeVisits.Observe(float64(visits))
	return NNParts{Bound: bound, Candidates: kept}, visits
}

// maxPruneSet bounds the O(n²) dominance prune: for pathological
// supersets (a near-world-sized cloak admits most of the dataset) pruning
// could not shrink the answer meaningfully anyway, so past this size the
// sound superset is returned directly.
const maxPruneSet = 2048

// CombineNNParts finishes a private NN query from partial evaluations
// (step 2 of Figure 5b): the global bound is the minimum of the parts'
// bounds, candidates are re-filtered against it, sorted canonically, and
// dominance-pruned. Called with one part it is exactly the sequential
// finalize; called with one part per shard it produces a bit-identical
// answer, because the global bound, the kept set, the prune decision and
// the pruned set are all functions of the union alone.
func CombineNNParts(region geo.Rect, parts ...NNParts) PrivateNNResult {
	bound := math.Inf(1)
	for _, p := range parts {
		if p.Bound < bound {
			bound = p.Bound
		}
	}
	var cands []PublicObject
	for _, p := range parts {
		for _, o := range p.Candidates {
			if geo.MinDist2(o.Loc, region) <= bound {
				cands = append(cands, o)
			}
		}
	}
	SortObjects(cands)
	superset := len(cands)

	if superset > maxPruneSet {
		return PrivateNNResult{Candidates: cands, SupersetSize: superset}
	}

	corners := region.Corners()
	dominated := make([]bool, len(cands))
	for i := range cands {
		for j := range cands {
			// Corner dominance is transitive, so a j that is itself later
			// found dominated is still a sound witness here.
			if i == j {
				continue
			}
			if dominates(cands[j].Loc, cands[i].Loc, corners) {
				dominated[i] = true
				break
			}
		}
	}
	res := PrivateNNResult{SupersetSize: superset}
	for i, o := range cands {
		if !dominated[i] {
			res.Candidates = append(res.Candidates, o)
		}
	}
	return res
}

// privateNNLocked is the evaluation core of PrivateNN; the caller holds
// (at least) the read lock. BatchQuery fans NN entries out to its worker
// pool over this function, so the two paths cannot drift apart. The second
// return value is the R-tree node-visit count of the browse.
func (s *Server) privateNNLocked(q PrivateNNQuery) (PrivateNNResult, int) {
	parts, visits := s.nnPartsLocked(q)
	res := CombineNNParts(q.Region, parts)
	s.met.observeNNAnswer(len(res.Candidates))
	return res, visits
}

// dominates reports whether object at b is at least as close as object at a
// to every corner (hence every point) of the region, and strictly closer to
// at least one corner. Co-located objects never dominate each other, so a
// true nearest neighbor always survives.
func dominates(b, a geo.Point, corners [4]geo.Point) bool {
	strict := false
	for _, c := range corners {
		db := c.Dist2(b)
		da := c.Dist2(a)
		if db > da {
			return false
		}
		if db < da {
			strict = true
		}
	}
	return strict
}
