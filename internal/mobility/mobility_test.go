package mobility

import (
	"math"
	"testing"

	"repro/internal/geo"
)

var world = geo.R(0, 0, 1, 1)

func TestGeneratePointsUniform(t *testing.T) {
	pts, err := GeneratePoints(PopulationSpec{N: 5000, World: world, Dist: Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		if !world.Contains(p) {
			t.Fatalf("point %v outside world", p)
		}
		sx += p.X
		sy += p.Y
	}
	if math.Abs(sx/5000-0.5) > 0.02 || math.Abs(sy/5000-0.5) > 0.02 {
		t.Errorf("uniform centroid off: (%v, %v)", sx/5000, sy/5000)
	}
}

func TestGeneratePointsDeterministic(t *testing.T) {
	spec := PopulationSpec{N: 100, World: world, Dist: Gaussian, Seed: 7}
	a, err := GeneratePoints(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GeneratePoints(spec)
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("non-deterministic generation at %d", i)
		}
	}
	c, _ := GeneratePoints(PopulationSpec{N: 100, World: world, Dist: Gaussian, Seed: 8})
	same := 0
	for i := range a {
		if a[i].Eq(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical populations")
	}
}

func TestGeneratePointsGaussianClustered(t *testing.T) {
	pts, err := GeneratePoints(PopulationSpec{
		N: 10000, World: world, Dist: Gaussian, NumClusters: 3, Stddev: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With tiny stddev and 3 clusters, a 10×10 grid histogram should have
	// most mass in few cells.
	var hist [100]int
	for _, p := range pts {
		cx := int(p.X * 10)
		cy := int(p.Y * 10)
		if cx > 9 {
			cx = 9
		}
		if cy > 9 {
			cy = 9
		}
		hist[cy*10+cx]++
	}
	occupied := 0
	for _, c := range hist {
		if c > 100 {
			occupied++
		}
	}
	if occupied > 12 {
		t.Errorf("gaussian population not clustered: %d dense cells", occupied)
	}
}

func TestGeneratePointsZipfSkew(t *testing.T) {
	pts, err := GeneratePoints(PopulationSpec{
		N: 10000, World: world, Dist: ZipfClusters, NumClusters: 20, Stddev: 0.005, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !world.Contains(p) {
			t.Fatal("zipf point outside world")
		}
	}
}

func TestGeneratePointsValidation(t *testing.T) {
	if _, err := GeneratePoints(PopulationSpec{N: -1, World: world}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := GeneratePoints(PopulationSpec{N: 10, World: geo.Rect{}}); err == nil {
		t.Error("zero-area world accepted")
	}
	if _, err := GeneratePoints(PopulationSpec{N: 10, World: world, Dist: Distribution(99)}); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestDistributionString(t *testing.T) {
	for _, d := range []Distribution{Uniform, Gaussian, ZipfClusters, Distribution(42)} {
		if d.String() == "" {
			t.Errorf("empty string for %d", d)
		}
	}
}

func TestGeneratePublicObjects(t *testing.T) {
	objs, err := GeneratePublicObjects(world, 9,
		ObjectClass{Name: "gas", N: 50, Dist: Uniform},
		ObjectClass{Name: "restaurant", N: 30, Dist: Gaussian},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 80 {
		t.Fatalf("got %d objects, want 80", len(objs))
	}
	gas, rest := 0, 0
	seen := map[uint64]bool{}
	for _, o := range objs {
		if seen[o.ID] {
			t.Fatalf("duplicate object ID %d", o.ID)
		}
		seen[o.ID] = true
		if !world.Contains(o.Loc) {
			t.Fatalf("object outside world: %v", o)
		}
		switch o.Class {
		case "gas":
			gas++
		case "restaurant":
			rest++
		default:
			t.Fatalf("unknown class %q", o.Class)
		}
	}
	if gas != 50 || rest != 30 {
		t.Errorf("class counts: gas=%d restaurant=%d", gas, rest)
	}
}

func TestWaypointSimMoves(t *testing.T) {
	sim, err := NewWaypointSim(WaypointConfig{
		Population: PopulationSpec{N: 200, World: world, Dist: Uniform, Seed: 2},
		MinSpeed:   0.001, MaxSpeed: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]geo.Point, sim.Len())
	for i, u := range sim.Users() {
		before[i] = u.Loc
	}
	moved := sim.Tick()
	if len(moved) != 200 {
		t.Errorf("all users should move with MaxPause=0, got %d", len(moved))
	}
	anyMoved := false
	for i, u := range sim.Users() {
		if !world.Contains(u.Loc) {
			t.Fatalf("user %d left the world: %v", i, u.Loc)
		}
		if !u.Loc.Eq(before[i]) {
			anyMoved = true
		}
	}
	if !anyMoved {
		t.Error("no user moved after a tick")
	}
	if sim.TickCount() != 1 {
		t.Errorf("TickCount = %d", sim.TickCount())
	}
}

func TestWaypointSimStaysInWorldLong(t *testing.T) {
	sim, err := NewWaypointSim(WaypointConfig{
		Population: PopulationSpec{N: 50, World: world, Dist: Gaussian, Seed: 4},
		MinSpeed:   0.01, MaxSpeed: 0.05, MaxPause: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 500; tick++ {
		sim.Tick()
	}
	for i, u := range sim.Users() {
		if !world.Contains(u.Loc) {
			t.Fatalf("user %d escaped world after long run: %v", i, u.Loc)
		}
	}
}

func TestWaypointSimPause(t *testing.T) {
	sim, err := NewWaypointSim(WaypointConfig{
		Population: PopulationSpec{N: 100, World: world, Dist: Uniform, Seed: 6},
		MinSpeed:   1.5, MaxSpeed: 2.0, // reach any waypoint in one step
		MaxPause: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Tick() // everyone arrives and draws a pause
	moved := sim.Tick()
	if len(moved) == sim.Len() {
		t.Error("expected some users pausing after arrival")
	}
}

func TestWaypointSimSpeedBound(t *testing.T) {
	const maxSpeed = 0.02
	sim, err := NewWaypointSim(WaypointConfig{
		Population: PopulationSpec{N: 100, World: world, Dist: Uniform, Seed: 8},
		MinSpeed:   0.01, MaxSpeed: maxSpeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]geo.Point, sim.Len())
	for i, u := range sim.Users() {
		prev[i] = u.Loc
	}
	for tick := 0; tick < 50; tick++ {
		sim.Tick()
		for i, u := range sim.Users() {
			if d := u.Loc.Dist(prev[i]); d > maxSpeed+1e-9 {
				t.Fatalf("user %d moved %v > max speed %v in one tick", i, d, maxSpeed)
			}
			prev[i] = u.Loc
		}
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	base := PopulationSpec{N: 1, World: world, Seed: 1}
	if _, err := NewWaypointSim(WaypointConfig{Population: base, MinSpeed: -1, MaxSpeed: 1}); err == nil {
		t.Error("negative MinSpeed accepted")
	}
	if _, err := NewWaypointSim(WaypointConfig{Population: base, MinSpeed: 2, MaxSpeed: 1}); err == nil {
		t.Error("MaxSpeed < MinSpeed accepted")
	}
	if _, err := NewWaypointSim(WaypointConfig{Population: base, MaxPause: -1}); err == nil {
		t.Error("negative MaxPause accepted")
	}
}

func TestRoadNetwork(t *testing.T) {
	net, err := NewRoadNetwork(world, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p := net.Intersection(0, 0); !p.Eq(geo.Pt(0, 0)) {
		t.Errorf("corner intersection = %v", p)
	}
	if p := net.Intersection(4, 3); !p.Eq(geo.Pt(1, 1)) {
		t.Errorf("far corner = %v", p)
	}
	rows, cols := net.Dims()
	if rows != 5 || cols != 4 {
		t.Errorf("Dims = %d,%d", rows, cols)
	}
	if _, err := NewRoadNetwork(world, 1, 5); err == nil {
		t.Error("1-row network accepted")
	}
	if _, err := NewRoadNetwork(geo.Rect{}, 3, 3); err == nil {
		t.Error("empty world accepted")
	}
}

func TestRoadSimOnRoads(t *testing.T) {
	net, _ := NewRoadNetwork(world, 11, 11)
	sim, err := NewRoadSim(RoadConfig{Net: net, N: 100, MinSpeed: 0.2, MaxSpeed: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 200; tick++ {
		sim.Tick()
		for i, u := range sim.Users() {
			if !world.Contains(u.Loc) {
				t.Fatalf("road user %d outside world: %v", i, u.Loc)
			}
			// On a Manhattan grid at least one coordinate must sit exactly on
			// a grid line (users move along roads, turning at intersections).
			fx := u.Loc.X * 10 // 11 columns -> spacing 0.1
			fy := u.Loc.Y * 10
			onVertical := math.Abs(fx-math.Round(fx)) < 1e-9
			onHorizontal := math.Abs(fy-math.Round(fy)) < 1e-9
			if !onVertical && !onHorizontal {
				t.Fatalf("road user %d off-road at %v", i, u.Loc)
			}
		}
	}
	if sim.TickCount() != 200 {
		t.Errorf("TickCount = %d", sim.TickCount())
	}
}

func TestRoadSimValidation(t *testing.T) {
	net, _ := NewRoadNetwork(world, 3, 3)
	if _, err := NewRoadSim(RoadConfig{Net: nil, N: 1}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewRoadSim(RoadConfig{Net: net, N: -1}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := NewRoadSim(RoadConfig{Net: net, N: 1, MinSpeed: 3, MaxSpeed: 1}); err == nil {
		t.Error("bad speed range accepted")
	}
}

func BenchmarkWaypointTick10k(b *testing.B) {
	sim, err := NewWaypointSim(WaypointConfig{
		Population: PopulationSpec{N: 10000, World: world, Dist: Uniform, Seed: 1},
		MinSpeed:   0.001, MaxSpeed: 0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Tick()
	}
}
