package main

import (
	"fmt"
	"log"

	"repro/internal/cloak"
	"repro/internal/mobility"
)

// expTemporal (E14) studies spatio-temporal cloaking: the latency/area
// trade-off against purely spatial k-anonymity. Spatial cloaking answers
// instantly with a region big enough to hold k users *now*; temporal
// cloaking answers with a small fixed cell but delays the answer until k
// users have *visited* the cell.
func expTemporal(cfg benchConfig) {
	const (
		ticks    = 400
		maxDelay = 200
		level    = 5 // 32×32 cells
	)
	for _, dist := range []mobility.Distribution{mobility.Uniform, mobility.Gaussian} {
		sim, err := mobility.NewWaypointSim(mobility.WaypointConfig{
			Population: mobility.PopulationSpec{
				N: cfg.n, World: world, Dist: dist, Seed: cfg.seed,
			},
			MinSpeed: 0.002, MaxSpeed: 0.01,
		})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		p := buildPopulation(cfg.n, dist, cfg.seed)
		tc, err := cloak.NewTemporal(p.pyr, level, maxDelay)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		cellArea := p.pyr.CellArea(level)

		fmt.Printf("\npopulation: %d users (%v), level-%d cells (area %.5f), %d ticks\n",
			cfg.n, dist, level, cellArea, ticks)
		t := newTable("k", "released %", "satisfied %", "mean delay (ticks)", "area vs spatial")

		for _, k := range []int{10, 50, 200} {
			// Fresh temporal cloaker per k to keep pending queues separate.
			tc, err = cloak.NewTemporal(p.pyr, level, maxDelay)
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			// Every 20th user requests temporal cloaking with this k; the
			// rest only feed visit history.
			requested := 0
			released, satisfied := 0, 0
			var delaySum int64
			for tick := 0; tick < ticks; tick++ {
				sim.Tick()
				for i, u := range sim.Users() {
					kk := 1
					if i%20 == 0 && tick%25 == 0 {
						kk = k
						requested++
					}
					tc.Observe(u.ID, u.Loc, kk)
				}
				for _, rel := range tc.Tick() {
					released++
					if rel.Satisfied {
						satisfied++
						delaySum += rel.To - rel.From
					}
				}
			}
			meanDelay := 0.0
			if satisfied > 0 {
				meanDelay = float64(delaySum) / float64(satisfied)
			}
			// Spatial comparison: quadtree region area for the same k.
			q := &cloak.Quadtree{Pyr: p.pyr}
			var spatialArea float64
			for i := 0; i < 100; i++ {
				res := q.Cloak(uint64(i*31+1), p.pts[i*31%len(p.pts)], reqK(k))
				spatialArea += res.Region.Area()
			}
			spatialArea /= 100
			t.row(k,
				100*float64(released)/maxf(float64(requested), 1),
				100*float64(satisfied)/maxf(float64(released), 1),
				meanDelay,
				fmt.Sprintf("%.3fx", cellArea/spatialArea))
		}
		t.flush()
	}
	fmt.Println("\nreading: temporal cloaking holds the region at one small cell")
	fmt.Println("(often far below the spatial region for the same k) and pays in")
	fmt.Println("latency instead; sparse populations or large k push delays toward")
	fmt.Println("the MaxDelay bound and satisfaction drops — the dual of the")
	fmt.Println("spatial family's area blow-up.")
}
