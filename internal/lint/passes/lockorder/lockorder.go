// Package lockorder implements the lbsvet pass that enforces the repo's
// documented lock hierarchy: a shard stripe mutex is always acquired
// before the spatial index mutex, never after.
//
// Mutex struct fields are classified with a //lint:lock directive on the
// field:
//
//	mu sync.Mutex //lint:lock stripe@0
//	idxMu sync.RWMutex //lint:lock index@1
//
// Lower ranks must be acquired first. The pass walks every function in
// source order tracking the set of held classes; acquiring a class of
// lower rank while holding one of higher rank is reported, as is calling
// a function that (transitively) performs such an acquisition. Function
// literals are separate lock contexts: the tree launches them as
// goroutines, which serialize with their parent through channels and wait
// groups, not by sharing its lock stack.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the stripe-before-index lock acquisition order\n\n" +
		"Mutex fields are classified with //lint:lock <class>@<rank>; lower\n" +
		"ranks must be acquired first.",
	Run: run,
}

type lockClass struct {
	name string
	rank int
}

type cacheKey struct{}

type result struct {
	byPkg map[string][]analysis.Diagnostic
}

// world is the per-run whole-program state.
type world struct {
	fset    *token.FileSet
	pkgs    []*pkgUnit
	classes map[types.Object]lockClass // annotated mutex field -> class
	// acquires maps each function to every lock class it may acquire,
	// directly or through callees (goroutine bodies excluded).
	acquires map[*types.Func]map[string]lockClass
	bodies   map[*types.Func]*fnUnit
	diags    map[string][]analysis.Diagnostic
}

type pkgUnit struct {
	path  string
	files []*ast.File
	info  *types.Info
}

type fnUnit struct {
	pkg  *pkgUnit
	body *ast.BlockStmt
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Prog != nil {
		res, ok := pass.Prog.Cache[cacheKey{}].(*result)
		if !ok {
			res = analyze(pass.Fset, programUnits(pass.Prog))
			pass.Prog.Cache[cacheKey{}] = res
		}
		for _, d := range res.byPkg[pass.Pkg.Path()] {
			pass.Report(d)
		}
		return nil, nil
	}
	// Modular mode: single-package view. The repo's lock hierarchy lives in
	// one package, so this loses only cross-package transitive acquires.
	res := analyze(pass.Fset, []*pkgUnit{{path: pass.Pkg.Path(), files: pass.Files, info: pass.TypesInfo}})
	for _, d := range res.byPkg[pass.Pkg.Path()] {
		pass.Report(d)
	}
	return nil, nil
}

func programUnits(prog *loader.Program) []*pkgUnit {
	var units []*pkgUnit
	for _, p := range prog.Packages {
		units = append(units, &pkgUnit{path: p.Types.Path(), files: p.Files, info: p.Info})
	}
	return units
}

func analyze(fset *token.FileSet, pkgs []*pkgUnit) *result {
	w := &world{
		fset:     fset,
		pkgs:     pkgs,
		classes:  make(map[types.Object]lockClass),
		acquires: make(map[*types.Func]map[string]lockClass),
		bodies:   make(map[*types.Func]*fnUnit),
		diags:    make(map[string][]analysis.Diagnostic),
	}
	w.collectClasses()
	w.collectBodies()
	w.summarize()
	w.check()
	res := &result{byPkg: w.diags}
	for _, ds := range res.byPkg {
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	}
	return res
}

func (w *world) report(pkg *pkgUnit, pos token.Pos, format string, args ...interface{}) {
	w.diags[pkg.path] = append(w.diags[pkg.path], analysis.Diagnostic{
		Pos: pos, Category: "lockorder", Message: fmt.Sprintf(format, args...),
	})
}

// collectClasses finds //lint:lock annotated struct fields.
func (w *world) collectClasses() {
	for _, pkg := range w.pkgs {
		for _, file := range pkg.files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					d, ok := directive.FromDoc(field.Comment, "lock")
					if !ok {
						d, ok = directive.FromDoc(field.Doc, "lock")
					}
					if !ok {
						continue
					}
					name, rankStr, found := strings.Cut(d.Args, "@")
					rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
					if !found || name == "" || err != nil {
						w.report(pkg, d.Pos, "malformed //lint:lock directive %q: want <class>@<rank>", d.Args)
						continue
					}
					for _, id := range field.Names {
						if obj := pkg.info.Defs[id]; obj != nil {
							w.classes[obj] = lockClass{name: strings.TrimSpace(name), rank: rank}
						}
					}
				}
				return true
			})
		}
	}
}

func (w *world) collectBodies() {
	for _, pkg := range w.pkgs {
		for _, file := range pkg.files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.info.Defs[fd.Name].(*types.Func); ok {
					w.bodies[fn] = &fnUnit{pkg: pkg, body: fd.Body}
				}
			}
		}
	}
}

// lockOp classifies a call as Lock/RLock (acquire) or Unlock/RUnlock
// (release) on an annotated field, returning the class.
func (w *world) lockOp(pkg *pkgUnit, call *ast.CallExpr) (cls lockClass, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockClass{}, false, false
	}
	var verb string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		verb = "acquire"
	case "Unlock", "RUnlock":
		verb = "release"
	default:
		return lockClass{}, false, false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return lockClass{}, false, false
	}
	obj := pkg.info.Uses[inner.Sel]
	if obj == nil {
		return lockClass{}, false, false
	}
	cls, ok = w.classes[obj]
	return cls, verb == "acquire", ok
}

// callee resolves a call to a declared function with a body.
func (w *world) callee(pkg *pkgUnit, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// summarize computes, to a fixpoint, every lock class each function may
// acquire directly or through its (non-goroutine) callees.
func (w *world) summarize() {
	for fn := range w.bodies {
		w.acquires[fn] = make(map[string]lockClass)
	}
	for changed := true; changed; {
		changed = false
		for fn, fu := range w.bodies {
			set := w.acquires[fn]
			ast.Inspect(fu.body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // separate lock context
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cls, acq, ok := w.lockOp(fu.pkg, call); ok && acq {
					if _, have := set[cls.name]; !have {
						set[cls.name] = cls
						changed = true
					}
				}
				if callee := w.callee(fu.pkg, call); callee != nil {
					for name, cls := range w.acquires[callee] {
						if _, have := set[name]; !have {
							set[name] = cls
							changed = true
						}
					}
				}
				return true
			})
		}
	}
}

// check walks every function (and every function literal, as a fresh
// context) reporting out-of-order acquisitions.
func (w *world) check() {
	for fn, fu := range w.bodies {
		_ = fn
		c := &checker{w: w, pkg: fu.pkg, held: make(map[string]heldLock)}
		c.stmt(fu.body)
	}
}

type heldLock struct {
	cls lockClass
	pos token.Pos
}

type checker struct {
	w    *world
	pkg  *pkgUnit
	held map[string]heldLock
}

func (c *checker) clone() *checker {
	held := make(map[string]heldLock, len(c.held))
	for k, v := range c.held {
		held[k] = v
	}
	return &checker{w: c.w, pkg: c.pkg, held: held}
}

// fresh starts an empty lock context (goroutines, function literals).
func (c *checker) fresh() *checker {
	return &checker{w: c.w, pkg: c.pkg, held: make(map[string]heldLock)}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.stmt(st)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.expr(call)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r)
		}
	case *ast.IfStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.clone().stmt(s.Body)
		if s.Else != nil {
			c.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.clone().stmt(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.clone().stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.clone().stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.clone().stmt(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			c.stmt(st)
		}
	case *ast.SelectStmt:
		c.clone().stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		for _, st := range s.Body {
			c.stmt(st)
		}
	case *ast.SendStmt:
		c.expr(s.Value)
	case *ast.GoStmt:
		// A goroutine is a fresh lock context; still check its body.
		c.goCall(s.Call)
	case *ast.DeferStmt:
		// Deferred unlocks release at function end; treating the lock as
		// held for the rest of the walk is exactly right. Deferred lock
		// acquisitions are not a pattern in this tree.
		if cls, acq, ok := c.w.lockOp(c.pkg, s.Call); ok && !acq {
			_ = cls
			return
		}
		c.expr(s.Call)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

func (c *checker) goCall(call *ast.CallExpr) {
	for _, a := range call.Args {
		c.expr(a)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.fresh().stmt(lit.Body)
	}
}

func (c *checker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.fresh().stmt(n.Body)
			return false
		case *ast.CallExpr:
			c.call(n)
			return false
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	// Arguments and nested calls first (source order).
	for _, a := range call.Args {
		c.expr(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ast.Inspect(sel.X, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				c.call(inner)
				return false
			}
			return true
		})
	}

	if cls, acq, ok := c.w.lockOp(c.pkg, call); ok {
		if !acq {
			delete(c.held, cls.name)
			return
		}
		c.checkAcquire(call.Pos(), cls, "")
		c.held[cls.name] = heldLock{cls: cls, pos: call.Pos()}
		return
	}
	if callee := c.w.callee(c.pkg, call); callee != nil {
		for _, cls := range c.w.acquires[callee] {
			c.checkAcquire(call.Pos(), cls, callee.Name())
		}
	}
}

func (c *checker) checkAcquire(pos token.Pos, cls lockClass, via string) {
	for _, h := range c.held {
		if h.cls.rank > cls.rank {
			if via != "" {
				c.w.report(c.pkg, pos,
					"call to %s acquires %s lock (rank %d) while holding %s lock (rank %d); lower ranks must be acquired first",
					via, cls.name, cls.rank, h.cls.name, h.cls.rank)
			} else {
				c.w.report(c.pkg, pos,
					"acquires %s lock (rank %d) while holding %s lock (rank %d); lower ranks must be acquired first",
					cls.name, cls.rank, h.cls.name, h.cls.rank)
			}
		}
	}
}
