package cloak

import (
	"sync"

	"repro/internal/geo"
	"repro/internal/privacy"
)

// Validator re-checks whether a previously issued region still satisfies a
// requirement against the current population — the cheap test that makes
// incremental evaluation sound. Space-dependent cloakers validate against
// pyramid counts; data-dependent ones against the population index.
type Validator func(region geo.Rect, req privacy.Requirement) (count int, ok bool)

// Incremental wraps any Cloaker with the Section 5.3 incremental
// evaluation: the cloaked region computed at time t−1 is reused at time t
// whenever (a) the user is still inside it and (b) it still satisfies her
// requirement. Only when either check fails is the inner cloaker invoked.
//
// Reuse has a privacy side benefit the paper does not mention but the
// experiments report: a stable region across updates leaks less movement
// information than a region recentered on every update.
//
// Unlike the plain cloakers, Incremental is safe for concurrent use: the
// region cache is guarded internally, so shard workers of a parallel
// anonymizer may share one instance. Inner and Validate must themselves be
// safe to call concurrently (the built-in cloakers are read-only over
// their indices, so they are, as long as no index writer runs at the same
// time — the anonymizer's reader/writer lock enforces that).
type Incremental struct {
	Inner Cloaker
	// Validate re-checks a cached region. When nil, only containment of the
	// new location is checked (cheapest, but may under-satisfy k after other
	// users moved away).
	Validate Validator
	// MaxSlack, when positive, forces a recompute whenever the cached
	// region's current population exceeds MaxSlack×k. Without it a region
	// computed under a sparse population (e.g. the whole world during
	// startup) would stay valid forever and quality of service would never
	// recover; with it the region re-tightens once the population allows.
	// Only effective when Validate is set (it supplies the count).
	MaxSlack int

	mu    sync.Mutex
	cache map[uint64]cached
}

type cached struct {
	region geo.Rect
	req    privacy.Requirement
}

// NewIncremental builds the wrapper.
func NewIncremental(inner Cloaker, validate Validator) *Incremental {
	return &Incremental{Inner: inner, Validate: validate, cache: make(map[uint64]cached)}
}

// Name implements Cloaker.
func (c *Incremental) Name() string { return c.Inner.Name() + "+inc" }

// Cloak implements Cloaker.
func (c *Incremental) Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.cache[id]; ok && prev.req == req && prev.region.Contains(loc) {
		if c.Validate == nil {
			return Result{
				Region:           prev.region,
				K:                req.K, // unknown without validation; assume held
				SatisfiedK:       true,
				SatisfiedMinArea: prev.region.Area() >= req.MinArea,
				SatisfiedMaxArea: prev.region.Area() <= req.EffectiveMaxArea(),
				Reused:           true,
			}
		}
		if count, valid := c.Validate(prev.region, req); valid {
			if c.MaxSlack <= 0 || count <= c.MaxSlack*req.K {
				r := finish(prev.region, count, req)
				r.Reused = true
				return r
			}
			// Over-slack: fall through to recompute a tighter region.
		}
	}
	res := c.Inner.Cloak(id, loc, req)
	c.cache[id] = cached{region: res.Region, req: req}
	return res
}

// Invalidate drops the cached region of one user (e.g. on deregistration).
func (c *Incremental) Invalidate(id uint64) {
	c.mu.Lock()
	delete(c.cache, id)
	c.mu.Unlock()
}

// CacheSize returns the number of cached regions.
func (c *Incremental) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}
