package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics: an observation v lands in the first
// bucket with v <= bound; anything above the last bound lands in the
// implicit +Inf overflow bucket). Buckets are fixed at construction, so
// Observe is a binary search plus two atomic adds — no locks, no
// allocation. All methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, immutable after construction
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	// exemplars holds one trace id per bucket (0 = none): the most recent
	// traced observation that landed there, linking a fat latency bucket
	// to a concrete captured trace.
	exemplars []atomic.Uint64
}

// newHistogram builds a histogram over the given bucket upper bounds. The
// bounds must be strictly increasing; DefaultLatencyBuckets is used when nil.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Uint64, len(b)+1),
	}
}

// bucketIndex returns the index of the first bound >= v (binary search),
// len(bounds) for the +Inf overflow bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, 0) }

// ObserveExemplar records one sample and, when traceID is nonzero, makes
// it the exemplar of the bucket the sample fell into.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	if traceID != 0 {
		h.exemplars[i].Store(traceID)
	}
	h.addSum(v)
}

// SetExemplar stores traceID as the exemplar of the bucket v falls into
// without recording an observation — for call sites where the sample
// itself is counted elsewhere (or by someone else) but the trace link is
// known only here.
func (h *Histogram) SetExemplar(v float64, traceID uint64) {
	if traceID == 0 {
		return
	}
	h.exemplars[h.bucketIndex(v)].Store(traceID)
}

// ObserveN records n samples of the same value in one shot — the bulk
// path the runtime-metrics bridge uses to fold kernel histogram deltas in
// without n individual observations.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[h.bucketIndex(v)].Add(n)
	h.addSum(v * float64(n))
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the unit every *_seconds
// histogram uses, matching Prometheus convention.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the time elapsed since t0 in seconds. The idiomatic call
// site is: defer h.Since(time.Now()).
func (h *Histogram) Since(t0 time.Time) { h.ObserveDuration(time.Since(t0)) }

// Snapshot returns a point-in-time copy. Concurrent observers may land
// between the bucket reads, so the snapshot is only approximately
// consistent — fine for monitoring, which is its job.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if t := h.exemplars[i].Load(); t != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make([]uint64, len(h.exemplars))
			}
			s.Exemplars[i] = t
		}
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// HistogramSnapshot is a frozen histogram: cumulative-free bucket counts
// (Counts[i] observations fell in bucket i; len(Counts) == len(Bounds)+1,
// the final entry being the +Inf overflow bucket) plus the sum of all
// observed values. Snapshots merge and travel over the wire protocol.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	// Exemplars carries one trace id per bucket (0 = none); nil when the
	// histogram never saw a traced observation.
	Exemplars []uint64
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge adds another snapshot into s. The bucket layouts must match.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: merge of mismatched histograms (%d vs %d buckets)", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: merge of mismatched histograms (bound %d: %g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	// Bounds may be shared with a live histogram; Counts are always owned.
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	if len(o.Exemplars) == len(s.Counts) {
		if s.Exemplars == nil {
			s.Exemplars = make([]uint64, len(s.Counts))
		}
		for i, t := range o.Exemplars {
			if s.Exemplars[i] == 0 {
				s.Exemplars[i] = t
			}
		}
	}
	s.Sum += o.Sum
	return nil
}

// ExemplarNear returns a trace id exemplifying the p-th percentile: the
// exemplar of the bucket that percentile falls into, or failing that the
// nearest slower, then nearest faster, bucket's. Returns 0 when the
// histogram holds no exemplars at all.
func (s HistogramSnapshot) ExemplarNear(p float64) uint64 {
	if len(s.Exemplars) != len(s.Counts) {
		return 0
	}
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(Rank(int(total), p))
	idx := len(s.Counts) - 1
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if rank < cum {
			idx = i
			break
		}
	}
	for i := idx; i < len(s.Exemplars); i++ {
		if s.Exemplars[i] != 0 {
			return s.Exemplars[i]
		}
	}
	for i := idx - 1; i >= 0; i-- {
		if s.Exemplars[i] != 0 {
			return s.Exemplars[i]
		}
	}
	return 0
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return s.Sum / float64(n)
}

// Quantile returns the p-th percentile (p in [0,100]) under the same
// nearest-rank rule as Rank, resolved to bucket granularity: the rank's
// bucket is located on the cumulative counts and the value is interpolated
// linearly inside it. Observations in the overflow bucket report the last
// finite bound (the histogram cannot know more). Returns 0 with no
// observations.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(Rank(int(total), p))
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if rank < cum+c {
			if i == len(s.Bounds) {
				// Overflow bucket: clamp to the last finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (float64(rank-cum) + 1) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileDuration is Quantile for *_seconds histograms.
func (s HistogramSnapshot) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p) * float64(time.Second))
}

// Summary formats the standard one-line report, durations assumed.
func (s HistogramSnapshot) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		s.Count(),
		time.Duration(s.Mean()*float64(time.Second)).Round(time.Microsecond),
		s.QuantileDuration(50).Round(time.Microsecond),
		s.QuantileDuration(95).Round(time.Microsecond),
		s.QuantileDuration(99).Round(time.Microsecond))
}

// ExpBuckets returns n strictly increasing upper bounds starting at start
// and multiplying by factor — the log-spaced layout every latency and size
// histogram here uses.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Shared bucket layouts. Keeping these package-level means every tier's
// histograms of the same kind are mergeable.
var (
	// DefaultLatencyBuckets covers 1µs to ~8.6s in ×2 steps (seconds).
	DefaultLatencyBuckets = ExpBuckets(1e-6, 2, 24)
	// AreaBuckets covers cloaked-region areas from 1e-8 to ~0.67 of a unit
	// world in ×4 steps.
	AreaBuckets = ExpBuckets(1e-8, 4, 14)
	// CountBuckets covers integer set sizes (achieved k, candidate counts)
	// from 1 to 32768 in ×2 steps.
	CountBuckets = ExpBuckets(1, 2, 16)
	// RatioBuckets covers fractions in [0,1] in ten linear steps.
	RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)
