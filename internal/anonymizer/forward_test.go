package anonymizer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/privacy"
)

// flakyForwarder is a Forwarder whose availability tests flip at will. It
// records the last region delivered per user.
type flakyForwarder struct {
	mu   sync.Mutex
	down bool
	last map[uint64]geo.Rect
	errs int
}

func newFlakyForwarder() *flakyForwarder {
	return &flakyForwarder{last: make(map[uint64]geo.Rect)}
}

func (f *flakyForwarder) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *flakyForwarder) forward(id uint64, region geo.Rect) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		f.errs++
		return errors.New("flaky: link down")
	}
	f.last[id] = region
	return nil
}

func (f *flakyForwarder) regionOf(id uint64) (geo.Rect, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.last[id]
	return r, ok
}

func (f *flakyForwarder) delivered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.last)
}

func newQueueAnon(t *testing.T, fwd Forwarder, queue int) *Anonymizer {
	t.Helper()
	a, err := New(Config{
		World:            geo.R(0, 0, 1, 1),
		Forward:          fwd,
		ForwardQueue:     queue,
		ForwardRetryBase: 5 * time.Millisecond,
		ForwardRetryMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func registerN(t *testing.T, a *Anonymizer, n int, k int) {
	t.Helper()
	prof := privacy.Constant(privacy.Requirement{K: k})
	for id := uint64(1); id <= uint64(n); id++ {
		if err := a.Register(id, prof); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// With the queue configured, a downstream outage must not fail user
// updates: regions spill, and the stats show it.
func TestForwardFailureSpillsInsteadOfFailing(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 64)
	registerN(t, a, 8, 2)

	fwd.setDown(true)
	for id := uint64(1); id <= 8; id++ {
		if _, err := a.Update(id, geo.Pt(0.1*float64(id), 0.5)); err != nil {
			t.Fatalf("update %d failed during outage: %v", id, err)
		}
	}
	st := a.Stats()
	if st.Spilled != 8 {
		t.Fatalf("Spilled = %d, want 8", st.Spilled)
	}
	if st.QueueDepth != 8 {
		t.Fatalf("QueueDepth = %d, want 8", st.QueueDepth)
	}
	if st.ForwardErrs == 0 {
		t.Fatal("ForwardErrs = 0, want > 0 (the direct attempts failed)")
	}
}

// Without a queue, the historical behavior stays: a forward failure fails
// the update.
func TestForwardFailureWithoutQueueStillFails(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 0)
	registerN(t, a, 1, 2)

	fwd.setDown(true)
	if _, err := a.Update(1, geo.Pt(0.5, 0.5)); err == nil {
		t.Fatal("update succeeded despite forward failure and no queue")
	}
}

// Spilled regions are replayed once the link recovers — zero lost updates,
// and every user's final region reaches the server.
func TestSpilledRegionsReplayAfterRecovery(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 64)
	const users = 16
	registerN(t, a, users, 2)

	fwd.setDown(true)
	for id := uint64(1); id <= users; id++ {
		if _, err := a.Update(id, geo.Pt(float64(id)/(users+1), 0.5)); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
	}
	fwd.setDown(false)
	waitFor(t, 5*time.Second, func() bool { return a.Stats().QueueDepth == 0 }, "queue drain")

	st := a.Stats()
	if st.Replayed != users {
		t.Fatalf("Replayed = %d, want %d", st.Replayed, users)
	}
	if st.Forwarded != users {
		t.Fatalf("Forwarded = %d, want %d", st.Forwarded, users)
	}
	if got := fwd.delivered(); got != users {
		t.Fatalf("server saw %d users' regions, want %d", got, users)
	}
}

// While a user has a region queued, newer updates coalesce into the queued
// entry — the latest region wins and ordering never inverts.
func TestQueueCoalescesPerUser(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 64)
	registerN(t, a, 4, 2)

	fwd.setDown(true)
	var lastRes geo.Rect
	for i := 0; i < 5; i++ {
		res, err := a.Update(1, geo.Pt(0.1+0.15*float64(i), 0.4))
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		lastRes = res.Region
	}
	st := a.Stats()
	if st.QueueDepth != 1 {
		t.Fatalf("QueueDepth = %d, want 1 (coalesced)", st.QueueDepth)
	}
	if st.Spilled != 5 {
		t.Fatalf("Spilled = %d, want 5", st.Spilled)
	}

	fwd.setDown(false)
	waitFor(t, 5*time.Second, func() bool { return a.Stats().QueueDepth == 0 }, "queue drain")
	got, ok := fwd.regionOf(1)
	if !ok {
		t.Fatal("user 1's region never reached the server")
	}
	if got != lastRes {
		t.Fatalf("server holds %v, want the latest region %v", got, lastRes)
	}
}

// A full queue evicts its oldest entry and counts the drop; depth never
// exceeds the bound.
func TestQueueBoundedDropsOldest(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 2)
	registerN(t, a, 5, 2)

	fwd.setDown(true)
	for id := uint64(1); id <= 5; id++ {
		if _, err := a.Update(id, geo.Pt(float64(id)/6, 0.5)); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
	}
	st := a.Stats()
	if st.QueueDepth != 2 {
		t.Fatalf("QueueDepth = %d, want 2 (bounded)", st.QueueDepth)
	}
	if st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", st.Dropped)
	}
}

// Close stops the replay goroutine even while the link is down, and is
// idempotent.
func TestQueueCloseWhileDown(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 8)
	registerN(t, a, 2, 2)
	fwd.setDown(true)
	if _, err := a.Update(1, geo.Pt(0.3, 0.3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { a.Close(); a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with a non-empty queue and a down link")
	}
}

// Concurrent updates during an outage + recovery never lose a user: every
// registered user's region lands downstream eventually.
func TestConcurrentSpillAndReplayLosesNothing(t *testing.T) {
	fwd := newFlakyForwarder()
	a := newQueueAnon(t, fwd.forward, 256)
	const users = 32
	registerN(t, a, users, 2)

	fwd.setDown(true)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := uint64(w*(users/4)+i%(users/4)) + 1
				if _, err := a.Update(id, geo.Pt(float64(id)/(users+1), float64(i%10)/10+0.05)); err != nil {
					t.Errorf("update %d: %v", id, err)
					return
				}
				if i == 25 && w == 0 {
					fwd.setDown(false) // recover mid-run
				}
			}
		}(w)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return a.Stats().QueueDepth == 0 }, "queue drain")
	if got := fwd.delivered(); got != users {
		t.Fatalf("server saw %d users, want %d — updates were lost", got, users)
	}
	if t.Failed() {
		return
	}
	st := a.Stats()
	t.Logf("stats: %+v", st)
}
