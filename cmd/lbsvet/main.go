// Command lbsvet runs the repo's static-analysis suite: the passes that
// prove the privacy trust boundary (privleak), the lock hierarchy
// (lockorder), the metric namespace (obsname), deadline discipline
// (ctxcall), wire-surface symmetry with guarded decodes and fuzz
// coverage (wiresym), the hot-path escape budgets (hotalloc), atomic vs
// plain access mixing (atomicmix), and the health of the //lint:
// directives themselves (dirverify).
//
// Standalone (the CI gate — all passes, whole-program):
//
//	go run ./cmd/lbsvet ./...
//
// As a vet tool (per-package passes only; privleak needs the whole
// program and is skipped):
//
//	go vet -vettool=$(which lbsvet) ./...
//
// Exit status is 0 when the tree is clean, 1 on findings, 2 on usage or
// load errors.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/passes/atomicmix"
	"repro/internal/lint/passes/ctxcall"
	"repro/internal/lint/passes/dirverify"
	"repro/internal/lint/passes/hotalloc"
	"repro/internal/lint/passes/lockorder"
	"repro/internal/lint/passes/obsname"
	"repro/internal/lint/passes/privleak"
	"repro/internal/lint/passes/wiresym"
)

var all = []*analysis.Analyzer{
	privleak.Analyzer,
	lockorder.Analyzer,
	obsname.Analyzer,
	ctxcall.Analyzer,
	wiresym.Analyzer,
	hotalloc.Analyzer,
	atomicmix.Analyzer,
	dirverify.Analyzer,
}

func main() {
	// The go command probes vet tools with -V=full and expects a single
	// version line it can use as a cache key.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("lbsvet version 1\n")
		return
	}
	// It also probes with -flags to learn which vet flags the tool
	// accepts, expecting a JSON listing; lbsvet exposes none.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Under `go vet -vettool`, the tool is invoked once per package with a
	// JSON config file as the sole argument.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitMode(os.Args[1]))
	}
	os.Exit(standalone())
}

func standalone() int {
	passesFlag := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	list := flag.Bool("list", false, "list the available passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lbsvet [-passes p1,p2] [package patterns]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return 0
	}
	selected, err := selectPasses(*passesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}
	prog, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, a := range selected {
		for _, pkg := range prog.Packages {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "lbsvet: %s: %v\n", a.Name, err)
				return 2
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", prog.Fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectPasses(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the JSON config the go command hands to vet tools, one
// file per package (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMode analyzes one package per the vet config. Only the per-package
// passes run here; privleak requires the whole program and is covered by
// the standalone driver.
func unitMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}
	// The go command requires the facts output to exist even though the
	// lbsvet passes exchange no facts.
	if cfg.VetxOutput != "" {
		if err := writeEmptyVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintln(os.Stderr, "lbsvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "lbsvet:", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "lbsvet:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, a := range all {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Prog:      nil, // modular mode
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "lbsvet: %s: %v\n", a.Name, err)
			return 2
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeEmptyVetx writes a facts file with zero facts in the gob framing
// the go command's cache expects to exist.
func writeEmptyVetx(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode([]struct{}{})
}
