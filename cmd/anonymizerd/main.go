// Command anonymizerd runs the Location Anonymizer as a TCP service (the
// trusted middle tier of Figure 1). Mobile users register privacy profiles
// and send exact location updates here; only cloaked regions are forwarded
// to the database server.
//
// With -metrics-addr set, an operational HTTP endpoint serves /metrics
// (Prometheus text format: the anon_* cloaking series — per-algorithm
// latency, cloaked-area and achieved-k distributions, reuse rate — and the
// proto_* wire series), /healthz, and the net/http/pprof profiling
// endpoints under /debug/pprof/. The same series are answered over TCP to
// MsgMetrics requests, which is how lbsload prints live percentile tables.
//
// Usage:
//
//	anonymizerd -addr :7071 -db localhost:7070 -alg quadtree -incremental -shards 8 -workers 8 -metrics-addr :9091
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7071", "listen address")
	dbAddr := flag.String("db", "localhost:7070", "database server address (empty = do not forward)")
	worldSize := flag.Float64("world", 1.0, "world is the square [0,size]²")
	algName := flag.String("alg", "quadtree", "cloaking algorithm: quadtree|grid|grid-ml|naive|mbr")
	gridLevel := flag.Int("grid-level", 6, "fixed level for grid cloaking")
	pyramidHeight := flag.Int("pyramid-height", 10, "space partition depth")
	incremental := flag.Bool("incremental", false, "enable incremental cloak maintenance")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "per-user state lock stripes (1 = fully serialized)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool for the batch cloaking phase")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	callTimeout := flag.Duration("call-timeout", 5*time.Second, "deadline for each call to the database server")
	forwardQueue := flag.Int("forward-queue", 1024, "spill queue capacity for cloaked regions while the database is down (0 = fail updates instead)")
	backpressure := flag.Bool("backpressure", true, "reject updates typed when the spill queue is full instead of evicting older ones")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "admission budget: max in-flight requests before typed overload rejection, queries capped at half (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 0, "drop connections idle for this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Second, "grace for in-flight requests on shutdown")
	traceSample := flag.Float64("trace-sample", 0, "fraction of traced requests to record spans for (0 = tracing off, 1 = all)")
	traceSlow := flag.Duration("trace-slow", 0, "pin spans at least this slow in the slow-trace ring regardless of ring wraparound (0 = off)")
	flag.Parse()

	var alg anonymizer.Algorithm
	switch *algName {
	case "quadtree":
		alg = anonymizer.AlgQuadtree
	case "grid":
		alg = anonymizer.AlgGrid
	case "grid-ml":
		alg = anonymizer.AlgGridML
	case "naive":
		alg = anonymizer.AlgNaive
	case "mbr":
		alg = anonymizer.AlgMBR
	default:
		log.Fatalf("anonymizerd: unknown algorithm %q", *algName)
	}

	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			Process:       "anonymizer",
			Sample:        *traceSample,
			SlowThreshold: *traceSlow,
		})
		log.Printf("anonymizerd: tracing %.3g of traced requests (slow threshold %v)", *traceSample, *traceSlow)
	}
	cfg := anonymizer.Config{
		World:         geo.R(0, 0, *worldSize, *worldSize),
		Algorithm:     alg,
		GridLevel:     *gridLevel,
		PyramidHeight: *pyramidHeight,
		Incremental:   *incremental,
		Shards:        *shards,
		BatchWorkers:  *workers,
		Metrics:       reg,
		Tracer:        tracer,
	}
	var db *protocol.DatabaseClient
	if *dbAddr != "" {
		var err error
		// Lazy dial + spill queue: a database that is down at startup or
		// goes away mid-run costs availability of forwards, never of the
		// anonymizer itself. Client-side proto_* series land in the same
		// registry as the cloaking metrics.
		db, err = protocol.DialDatabase(*dbAddr,
			protocol.WithLazyDial(),
			protocol.WithCallTimeout(*callTimeout),
			protocol.WithClientMetrics(reg),
			protocol.WithClientTracing(tracer))
		if err != nil {
			log.Fatalf("anonymizerd: database client for %s: %v", *dbAddr, err)
		}
		cfg.Forward = db.UpdatePrivate
		cfg.ForwardCtx = db.UpdatePrivateCtx
		cfg.ForwardQueue = *forwardQueue
		cfg.ForwardBackpressure = *backpressure
		log.Printf("anonymizerd: forwarding cloaked regions to %s (spill queue %d, backpressure %v)",
			*dbAddr, *forwardQueue, *backpressure)
	}

	anon, err := anonymizer.New(cfg)
	if err != nil {
		log.Fatalf("anonymizerd: %v", err)
	}
	svcOpts := []protocol.Option{protocol.WithMetrics(reg),
		protocol.WithTracing(tracer),
		protocol.WithMaxConns(*maxConns),
		protocol.WithReadTimeout(*readTimeout),
		protocol.WithDrainTimeout(*drainTimeout)}
	if *maxInflight > 0 {
		svcOpts = append(svcOpts, protocol.WithAdmission(*maxInflight))
		log.Printf("anonymizerd: admission control on (budget %d in-flight, queries capped at %d)",
			*maxInflight, max(1, *maxInflight/2))
	}
	svc, err := protocol.ServeAnonymizer(*addr, anon, log.Printf, svcOpts...)
	if err != nil {
		log.Fatalf("anonymizerd: %v", err)
	}
	log.Printf("anonymizerd: location anonymizer (%v%s, %d shards, %d batch workers) listening on %s",
		alg, map[bool]string{true: "+incremental", false: ""}[*incremental],
		anon.Shards(), anon.BatchWorkers(), svc.Addr())
	var metricsSrv *obs.MetricsServer
	if *metricsAddr != "" {
		metricsSrv, err = obs.ServeMetrics(*metricsAddr, reg,
			obs.Route{Pattern: "/traces", Handler: tracer.Handler()})
		if err != nil {
			log.Fatalf("anonymizerd: metrics endpoint: %v", err)
		}
		log.Printf("anonymizerd: metrics on http://%s/metrics (traces on /traces, pprof under /debug/pprof/)", metricsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("anonymizerd: shutting down (stats: %+v)", anon.Stats())
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	svc.Close()
	anon.Close()
	if db != nil {
		db.Close()
	}
}
