// Package fixture exercises the atomicmix pass: once any &s.f is handed
// to sync/atomic, plain loads and stores of f are races unless the
// guarding mutex is held first or the line carries a justified
// //lint:atomic-guarded annotation.
package fixture

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu   sync.Mutex
	hits uint64
	errs uint64
	last uint64
}

func bump(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint64(&s.errs, 1)
	atomic.AddUint64(&s.last, 1)
}

func snapshot(s *stats) uint64 {
	return atomic.LoadUint64(&s.hits) // the atomic access itself: fine
}

func resetPlain(s *stats) {
	s.hits = 0 // want "hits is accessed atomically .* but read/written plainly here"
}

func readPlain(s *stats) uint64 {
	return s.hits // want "hits is accessed atomically .* but read/written plainly here"
}

func resetLocked(s *stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = 0 // sibling mutex held before the access: exempt
}

// construct writes the field before the value is published; the
// annotation records why the plain store is safe.
func construct() *stats {
	s := &stats{}
	s.last = 1 //lint:atomic-guarded not yet published, no concurrent reader exists
	return s
}

func resetUnjustified(s *stats) {
	s.last = 0 //lint:atomic-guarded
	// want "//lint:atomic-guarded needs a justification"
}
