package server

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/geo"
	"repro/internal/rtree"
)

// RangeMode selects how the private range query builds its candidate set
// (Section 6.2.1, Figure 5a).
type RangeMode uint8

const (
	// RangeRounded is the exact semantics: an object is a candidate iff its
	// distance to the *nearest* point of the cloaked region is ≤ radius —
	// the "rounded rectangle" of the paper.
	RangeRounded RangeMode = iota
	// RangeMBR over-approximates the rounded rectangle by its minimum
	// bounding rectangle (the region expanded by radius on every side), the
	// simplification the paper prescribes for a real implementation. The
	// candidate set is a superset of RangeRounded's.
	RangeMBR
)

// String implements fmt.Stringer.
func (m RangeMode) String() string {
	switch m {
	case RangeRounded:
		return "rounded"
	case RangeMBR:
		return "mbr"
	default:
		return fmt.Sprintf("rangemode(%d)", uint8(m))
	}
}

// PrivateRangeQuery is a private query over public data: "find all <class>
// objects within Radius of my location", issued with a cloaked region
// instead of the location.
type PrivateRangeQuery struct {
	Region geo.Rect
	Radius float64
	// Class filters stationary objects ("" = all classes + moving objects).
	Class string
	Mode  RangeMode
}

// validate checks the query parameters; BatchQuery relies on this being
// exactly the check PrivateRange applies, so per-entry errors match the
// sequential path verbatim.
func (q PrivateRangeQuery) validate() error {
	if !q.Region.Valid() {
		return fmt.Errorf("server: invalid query region %v", q.Region)
	}
	if q.Radius < 0 || math.IsNaN(q.Radius) {
		return fmt.Errorf("server: invalid radius %g", q.Radius)
	}
	return nil
}

// PrivateRange executes the query and returns the candidate list: every
// public object that could be within Radius of *some* point of the region.
// The mobile user refines the list locally with RefineRange. The candidate
// set is complete by construction (invariant I5): an object within Radius
// of any point p of the region satisfies MinDist(obj, region) ≤ Radius and
// lies inside the expanded MBR the index is probed with.
func (s *Server) PrivateRange(q PrivateRangeQuery) ([]PublicObject, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	filter := q.Region.Expand(q.Radius)
	s.met.privateRangeQs.Inc()
	defer s.met.latPrivateRange.Since(time.Now())

	s.mu.RLock()
	defer s.mu.RUnlock()

	var out []PublicObject
	keep := func(id uint64, loc geo.Point, moving bool) {
		if q.Mode == RangeRounded && geo.MinDist(loc, q.Region) > q.Radius {
			return
		}
		o := s.resolveObjectLocked(id, loc, moving)
		if q.Class != "" && o.Class != q.Class {
			return
		}
		out = append(out, o)
	}
	items, visits := s.stationary.SearchVisits(filter, nil)
	for _, it := range items {
		keep(it.ID, it.Loc, false)
	}
	s.met.nodeVisits.Observe(float64(visits))
	if q.Class == "" {
		for _, m := range s.moving.Search(filter, nil) {
			keep(m.ID, m.Loc, true)
		}
	}
	// Canonical order: the answer is a set, and emitting it sorted makes
	// the single-server result bit-identical to a scatter/gather union of
	// per-shard results (and to the batch engine's shared-descent path).
	SortObjects(out)
	return out, nil
}

// PrivateNNQuery is a private nearest-neighbor query over public data:
// "find my nearest <class> object", issued with a cloaked region.
type PrivateNNQuery struct {
	Region geo.Rect
	// Class filters stationary objects ("" = all stationary classes).
	// Moving objects are excluded from NN queries: their answer would be
	// stale by the time the client refines it.
	Class string
}

// PrivateNNResult carries the candidate set and the filter statistics the
// experiments report.
type PrivateNNResult struct {
	// Candidates is guaranteed to contain the exact nearest neighbor of
	// every point of the query region (invariant I6).
	Candidates []PublicObject
	// SupersetSize is the candidate count before dominance pruning; the
	// difference to len(Candidates) measures what pruning buys (experiment
	// E5's ablation).
	SupersetSize int
}

// PrivateNN executes the query. The computation follows Figure 5b:
//
//  1. A sound superset via the min–max bound: browse objects by MinDist to
//     the region; any object whose MinDist exceeds T = min over seen
//     objects of MaxDist(object, region) can never be the nearest neighbor
//     of any point of the region (that minimizing object is closer
//     everywhere), so browsing stops there.
//  2. Pairwise bisector dominance pruning: object a is removed if some
//     object b is at least as close to *every* point of the region
//     (equivalently: to all four corners, since the half-plane of b's
//     bisector is convex). This eliminates objects like target A in
//     Figure 5b while provably never removing a true nearest neighbor.
func (s *Server) PrivateNN(q PrivateNNQuery) (PrivateNNResult, error) {
	if err := q.validate(); err != nil {
		return PrivateNNResult{}, err
	}
	s.met.privateNNQs.Inc()
	defer s.met.latPrivateNN.Since(time.Now())

	s.mu.RLock()
	defer s.mu.RUnlock()
	res, _ := s.privateNNLocked(q)
	return res, nil
}

// validate checks the query parameters (shared with BatchQuery).
func (q PrivateNNQuery) validate() error {
	if !q.Region.Valid() {
		return fmt.Errorf("server: invalid query region %v", q.Region)
	}
	return nil
}

// NNParts is the partial private-NN evaluation one data partition
// contributes: the objects that pass the local min–max filter, *unpruned*,
// plus the local bound they were filtered against. A single server is the
// degenerate case of one part over the whole dataset; the routing tier
// gathers one part per shard and finishes both through the same
// CombineNNParts, so the two paths cannot diverge. Candidates stay
// unpruned because the prune-or-not decision (maxPruneSet) depends on the
// *global* superset size, which no single partition knows.
type NNParts struct {
	// Bound is min MaxDist²(object, region) over every class-matching
	// object of the partition (+Inf when there is none).
	Bound float64
	// Candidates are the class-matching objects with
	// MinDist²(object, region) ≤ Bound. Their order is an index-traversal
	// artifact and carries no meaning: CombineNNParts sorts the union
	// canonically before anything downstream sees it.
	Candidates []PublicObject
}

// PrivateNNParts evaluates the shard-local half of a private NN query:
// the min–max browse without the global finalize. The routing tier calls
// this on every shard owning a tile of the query region and combines the
// parts with CombineNNParts.
func (s *Server) PrivateNNParts(q PrivateNNQuery) (NNParts, error) {
	if err := q.validate(); err != nil {
		return NNParts{}, err
	}
	s.met.privateNNQs.Inc()
	defer s.met.latPrivateNN.Since(time.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	parts, _ := s.nnPartsLocked(q)
	return parts, nil
}

// nnPartsLocked is the min–max filter half of the NN evaluation (step 1
// of Figure 5b); the caller holds (at least) the read lock. The second
// return value is the R-tree node-visit count.
func (s *Server) nnPartsLocked(q PrivateNNQuery) (NNParts, int) {
	return s.nnPartsScratchLocked(q, nil)
}

// nnPartsScratchLocked is nnPartsLocked with an optional per-worker
// scratch: the R-tree item buffer — and, with a scratch, the candidate
// slice too — is borrowed from sc, so the batch engine's repeated NN
// units reuse one allocation set. Scratch-borrowed candidates are valid
// only until the worker's next unit: every scratch caller must consume
// them synchronously (combineNNPartsScratch copies what it keeps).
// Without a scratch the candidate slice allocates fresh, because the
// NNParts escapes into results on that path (PrivateNNParts over the
// wire). The descent is rtree.MinMaxCandidates, which produces exactly
// the set and bound of the incremental browse + refilter construction
// (the equivalence argument lives on that function).
func (s *Server) nnPartsScratchLocked(q PrivateNNQuery, sc *batchScratch) (NNParts, int) {
	var match func(rtree.Item) bool
	if q.Class != "" {
		match = func(it rtree.Item) bool {
			o, ok := s.stationaryMeta[it.ID]
			return ok && o.Class == q.Class
		}
	}
	var buf []rtree.Item
	if sc != nil {
		buf = sc.items[:0]
	}
	items, bound, visits := s.stationary.MinMaxCandidates(q.Region, match, buf)
	if sc != nil {
		sc.items = items
	}
	// Emit candidates by ascending ID — canonical SortObjects order for
	// unique stationary IDs — so CombineNNParts's sort runs over an
	// already-ordered slice instead of re-shuffling DFS emission order.
	slices.SortFunc(items, func(a, b rtree.Item) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	var kept []PublicObject
	if len(items) > 0 {
		if sc != nil {
			kept = sc.keptObjs[:0]
		} else {
			kept = make([]PublicObject, 0, len(items))
		}
		for _, it := range items {
			kept = append(kept, s.resolveObjectLocked(it.ID, it.Loc, false))
		}
		if sc != nil {
			sc.keptObjs = kept
		}
	}
	s.met.nodeVisits.Observe(float64(visits))
	return NNParts{Bound: bound, Candidates: kept}, visits
}

// maxPruneSet bounds the O(n²) dominance prune: for pathological
// supersets (a near-world-sized cloak admits most of the dataset) pruning
// could not shrink the answer meaningfully anyway, so past this size the
// sound superset is returned directly.
const maxPruneSet = 2048

// CombineNNParts finishes a private NN query from partial evaluations
// (step 2 of Figure 5b): the global bound is the minimum of the parts'
// bounds, candidates are re-filtered against it, sorted canonically, and
// dominance-pruned. Called with one part it is exactly the sequential
// finalize; called with one part per shard it produces a bit-identical
// answer, because the global bound, the kept set, the prune decision and
// the pruned set are all functions of the union alone.
func CombineNNParts(region geo.Rect, parts ...NNParts) PrivateNNResult {
	return combineNNPartsScratch(region, nil, parts...)
}

// combineScratch carries the reusable working set of the dominance prune.
// The batch engine hands one per worker so the prune's O(n) side arrays
// stop churning the heap on every member; a nil scratch (the sequential
// public API) allocates locally.
type combineScratch struct {
	cands     []PublicObject
	cdist     [][4]float64
	totals    []float64
	order     []int
	frontier  []int
	dominated []bool
}

// combineNNPartsScratch is CombineNNParts with an optional reusable
// scratch. The answer bytes are identical for any scratch value.
func combineNNPartsScratch(region geo.Rect, sc *combineScratch, parts ...NNParts) PrivateNNResult {
	bound := math.Inf(1)
	for _, p := range parts {
		if p.Bound < bound {
			bound = p.Bound
		}
	}
	if sc == nil {
		sc = &combineScratch{}
	}
	cands := sc.cands[:0]
	if len(parts) == 1 {
		// A single part's candidates are already its producer's min–max
		// filter output (every NNParts constructor — the sequential
		// descent, the batch group runner, a remote shard — refilters
		// against its own final bound, which here IS the global bound),
		// so the distance test would keep everything.
		cands = append(cands, parts[0].Candidates...)
	} else {
		for _, p := range parts {
			for _, o := range p.Candidates {
				if geo.MinDist2(o.Loc, region) <= bound {
					cands = append(cands, o)
				}
			}
		}
	}
	sc.cands = cands
	SortObjects(cands)
	superset := len(cands)

	if superset > maxPruneSet {
		out := make([]PublicObject, len(cands))
		copy(out, cands)
		return PrivateNNResult{Candidates: out, SupersetSize: superset}
	}

	// The pairwise prune compares only corner distances, so compute each
	// candidate's four squared corner distances once instead of eight
	// Dist² evaluations per pair. Dominance b→a needs every corner of b at
	// most as close and one strictly closer, which forces
	// Σ corners(b) < Σ corners(a): a witness for a candidate can only sit
	// strictly before it in ascending total order. And because dominance
	// is transitive (coordinate-wise ≤ composes; strictness survives), a
	// dominated candidate always has an *undominated* dominator with a
	// strictly smaller total — so testing each candidate against the
	// running Pareto frontier alone reproduces the full pairwise scan's
	// dominated set at a fraction of the witness tests.
	if sc == nil {
		sc = &combineScratch{}
	}
	corners := region.Corners()
	// Every cell below is (re)written before it is read, so growing the
	// scratch without clearing stale contents is safe.
	cdist := slices.Grow(sc.cdist[:0], len(cands))[:len(cands)]
	totals := slices.Grow(sc.totals[:0], len(cands))[:len(cands)]
	order := slices.Grow(sc.order[:0], len(cands))[:len(cands)]
	dominated := slices.Grow(sc.dominated[:0], len(cands))[:len(cands)]
	sc.cdist, sc.totals, sc.order, sc.dominated = cdist, totals, order, dominated
	for i, o := range cands {
		for k := range corners {
			cdist[i][k] = corners[k].Dist2(o.Loc)
		}
		totals[i] = cdist[i][0] + cdist[i][1] + cdist[i][2] + cdist[i][3]
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case totals[a] < totals[b]:
			return -1
		case totals[a] > totals[b]:
			return 1
		}
		return 0
	})
	frontier := sc.frontier[:0]
	for _, i := range order {
		dom := false
		for _, j := range frontier {
			// The frontier is in ascending-total order too; equal totals
			// cannot dominate (strictness), so stop at the candidate's own.
			if totals[j] >= totals[i] {
				break
			}
			if dominatesDist(cdist[j], cdist[i]) {
				dom = true
				break
			}
		}
		dominated[i] = dom
		if !dom {
			frontier = append(frontier, i)
		}
	}
	sc.frontier = frontier
	res := PrivateNNResult{SupersetSize: superset}
	if len(frontier) > 0 {
		// The frontier holds exactly the undominated candidates, so the
		// answer (which escapes) is sized exactly instead of grown.
		res.Candidates = make([]PublicObject, 0, len(frontier))
		for i, o := range cands {
			if !dominated[i] {
				res.Candidates = append(res.Candidates, o)
			}
		}
	}
	return res
}

// privateNNLocked is the evaluation core of PrivateNN; the caller holds
// (at least) the read lock. BatchQuery fans NN entries out to its worker
// pool over this function (with a per-worker scratch), so the two paths
// cannot drift apart. The second return value is the R-tree node-visit
// count of the descent.
func (s *Server) privateNNLocked(q PrivateNNQuery) (PrivateNNResult, int) {
	return s.privateNNScratchLocked(q, nil)
}

// privateNNScratchLocked is privateNNLocked with an optional reusable
// scratch (nil is valid and means "allocate locally").
func (s *Server) privateNNScratchLocked(q PrivateNNQuery, sc *batchScratch) (PrivateNNResult, int) {
	parts, visits := s.nnPartsScratchLocked(q, sc)
	var comb *combineScratch
	if sc != nil {
		comb = &sc.comb
	}
	res := combineNNPartsScratch(q.Region, comb, parts)
	s.met.observeNNAnswer(len(res.Candidates))
	return res, visits
}

// dominates reports whether object at b is at least as close as object at a
// to every corner (hence every point) of the region, and strictly closer to
// at least one corner. Co-located objects never dominate each other, so a
// true nearest neighbor always survives.
func dominates(b, a geo.Point, corners [4]geo.Point) bool {
	strict := false
	for _, c := range corners {
		db := c.Dist2(b)
		da := c.Dist2(a)
		if db > da {
			return false
		}
		if db < da {
			strict = true
		}
	}
	return strict
}

// dominatesDist is dominates over precomputed squared corner distances —
// the same comparisons, fed from CombineNNParts's per-candidate cache.
func dominatesDist(db, da [4]float64) bool {
	strict := false
	for k := range db {
		if db[k] > da[k] {
			return false
		}
		if db[k] < da[k] {
			strict = true
		}
	}
	return strict
}
