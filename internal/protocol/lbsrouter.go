package protocol

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/geo"
	"repro/internal/router"
	"repro/internal/server"
)

// DatabaseClient implements the router's shard surface, so a router can
// be wired straight onto dialed lbsd links.
var _ router.Shard = (*DatabaseClient)(nil)

// ServeRouter exposes a router.Router over TCP speaking the database
// service's wire protocol: clients (the anonymizer's forwarder, admin
// tools, the load generators) dial a routed tier exactly as they dial a
// single lbsd. Query, update and stats messages scatter through the
// router; messages whose semantics are inherently single-node (public NN,
// continuous queries) answer with a typed unsupported error. MsgShardMap
// reports the tile→shard topology.
func ServeRouter(addr string, rt *router.Router, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	h := &routerHandler{rt: rt}
	return Serve(addr, h.handle, logf, opts...)
}

type routerHandler struct {
	rt *router.Router
}

func (h *routerHandler) handle(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	resp, err := h.serve(ctx, typ, payload)
	if err != nil && errors.Is(err, ErrRemote) {
		// The failure came back over a shard link, already wrapped once as
		// "protocol: remote error: <message>". Re-raise just the message:
		// the router's own service wraps it again on the way out, so a
		// routed client reads exactly the text a single-server client would.
		err = errors.New(strings.TrimPrefix(err.Error(), ErrRemote.Error()+": "))
	}
	return resp, err
}

func (h *routerHandler) serve(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	d := NewDecoder(payload)
	switch typ {
	case MsgUpdatePrivate:
		id := d.U64()
		region := d.Rect()
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.rt.UpdatePrivateCtx(ctx, id, region)

	case MsgRemovePrivate:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.rt.RemovePrivateCtx(ctx, id)

	case MsgLoadStationary:
		objs := decodeObjects(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.rt.LoadStationaryCtx(ctx, objs)

	case MsgPrivateRange:
		q := server.PrivateRangeQuery{
			Region: d.Rect(),
			Radius: d.F64(),
			Class:  d.Str(),
			Mode:   server.RangeMode(d.U8()),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		objs, err := h.rt.PrivateRangeCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		return encodeObjects(objs), nil

	case MsgPrivateNN:
		q := server.PrivateNNQuery{Region: d.Rect(), Class: d.Str()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		res, err := h.rt.PrivateNNCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U32(uint32(res.SupersetSize))
		e.buf = append(e.buf, encodeObjects(res.Candidates)...)
		return e.Bytes(), nil

	case MsgPublicCount:
		q := server.PublicRangeCountQuery{Query: d.Rect()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		res, err := h.rt.PublicCountCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		encodeCountResult(&e, res)
		return e.Bytes(), nil

	case MsgBatchQuery:
		entries, err := decodeBatchEntries(d)
		if err != nil {
			return nil, err
		}
		res, err := h.rt.BatchQueryCtx(ctx, entries)
		if err != nil {
			return nil, err
		}
		return encodeBatchResult(entries, res), nil

	case MsgUpdateMoving:
		id := d.U64()
		loc := d.Point()
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.rt.UpdateMovingCtx(ctx, id, loc)

	case MsgRemoveMoving:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		existed, err := h.rt.RemoveMovingCtx(ctx, id)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U8(boolByte(existed))
		return e.Bytes(), nil

	case MsgStats:
		stationary, private, err := h.rt.StatsCtx(ctx)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U32(uint32(stationary))
		e.U32(uint32(private))
		return e.Bytes(), nil

	case MsgShardMap:
		return encodeShardMap(h.rt.Topology()), nil

	case MsgPublicNN, MsgRegContCount, MsgContCount, MsgUnregContCount,
		MsgNNParts, MsgCountProbs, MsgShardBatch:
		return nil, fmt.Errorf("protocol: router service: %s not supported by the router tier", MessageName(typ))

	default:
		return nil, fmt.Errorf("protocol: router service: unknown message type %d", typ)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// encodeShardMap serializes a topology: world, grid dimensions, shard
// addresses, then the tile→shard ownership table as uint16s.
func encodeShardMap(t router.Topology) []byte {
	var e Encoder
	e.Rect(t.World)
	e.U32(uint32(t.Cols)).U32(uint32(t.Rows))
	e.U32(uint32(t.Shards))
	for i := 0; i < t.Shards; i++ {
		addr := ""
		if i < len(t.Addrs) {
			addr = t.Addrs[i]
		}
		e.Str(addr)
	}
	e.U32(uint32(len(t.Owners)))
	for _, o := range t.Owners {
		e.U16(uint16(o))
	}
	return e.Bytes()
}

// decodeShardMap parses a topology, rejecting inconsistent frames: the
// owner table must match the grid size and every owner must name one of
// the declared shards.
func decodeShardMap(d *Decoder) (router.Topology, error) {
	var t router.Topology
	t.World = d.Rect()
	t.Cols = int(d.U32())
	t.Rows = int(d.U32())
	t.Shards = int(d.U32())
	if d.Err() != nil {
		return router.Topology{}, d.Err()
	}
	if t.Cols < 1 || t.Rows < 1 || t.Cols > 256 || t.Rows > 256 {
		return router.Topology{}, fmt.Errorf("protocol: shard map grid %dx%d out of range", t.Cols, t.Rows)
	}
	if t.Shards < 1 || t.Shards > router.MaxShards {
		return router.Topology{}, fmt.Errorf("protocol: shard map with %d shards out of range", t.Shards)
	}
	t.Addrs = make([]string, 0, t.Shards)
	for i := 0; i < t.Shards && d.Err() == nil; i++ {
		t.Addrs = append(t.Addrs, d.Str())
	}
	n := int(d.U32())
	if d.Err() == nil && n != t.Cols*t.Rows {
		return router.Topology{}, fmt.Errorf("protocol: shard map owner table has %d entries for a %dx%d grid", n, t.Cols, t.Rows)
	}
	t.Owners = make([]int, 0, capHint(n, 2, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		o := int(d.U16())
		if o >= t.Shards {
			return router.Topology{}, fmt.Errorf("protocol: shard map tile %d owned by unknown shard %d", i, o)
		}
		t.Owners = append(t.Owners, o)
	}
	if d.Err() != nil {
		return router.Topology{}, d.Err()
	}
	return t, nil
}

// encodeSubQueries serializes a forwarded sub-batch: each entry keeps its
// index in the original batch, followed by the same per-kind encoding a
// direct batch request uses.
func encodeSubQueries(e *Encoder, subs []router.SubQuery) {
	e.U32(uint32(len(subs)))
	for _, sq := range subs {
		e.U32(uint32(sq.Index))
		be := sq.Entry
		e.U8(byte(be.Kind))
		switch be.Kind {
		case server.BatchPrivateRange:
			e.Rect(be.Range.Region).F64(be.Range.Radius).Str(be.Range.Class).U8(byte(be.Range.Mode))
		case server.BatchPrivateNN:
			e.Rect(be.NN.Region).Str(be.NN.Class)
		case server.BatchPublicCount:
			e.Rect(be.Count.Query)
		}
	}
}

// decodeSubQueries parses a forwarded sub-batch. Like the direct batch
// decoder, an unknown kind byte makes the rest unparseable and fails the
// whole frame.
func decodeSubQueries(d *Decoder) ([]router.SubQuery, error) {
	n := int(d.U32())
	if n > maxBatchEntries {
		return nil, fmt.Errorf("protocol: sub-batch of %d entries exceeds the %d-entry cap", n, maxBatchEntries)
	}
	// Each sub-query needs ≥ 37 bytes (index + kind + rectangle).
	subs := make([]router.SubQuery, 0, capHint(n, 37, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		sq := router.SubQuery{Index: int(d.U32())}
		kind := server.BatchKind(d.U8())
		be := server.BatchEntry{Kind: kind}
		switch kind {
		case server.BatchPrivateRange:
			be.Range = server.PrivateRangeQuery{
				Region: d.Rect(),
				Radius: d.F64(),
				Class:  d.Str(),
				Mode:   server.RangeMode(d.U8()),
			}
		case server.BatchPrivateNN:
			be.NN = server.PrivateNNQuery{Region: d.Rect(), Class: d.Str()}
		case server.BatchPublicCount:
			be.Count = server.PublicRangeCountQuery{Query: d.Rect()}
		default:
			return nil, fmt.Errorf("protocol: unknown sub-query kind %d at entry %d", byte(kind), i)
		}
		sq.Entry = be
		subs = append(subs, sq)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return subs, nil
}

// encodeUserProbs appends a length-prefixed (user id, probability) pair
// list — the shard-local count payload, shared by the MsgCountProbs
// response and the count arm of a sub-batch result.
func encodeUserProbs(e *Encoder, pairs []server.UserProb) {
	e.U32(uint32(len(pairs)))
	for _, up := range pairs {
		e.U64(up.ID).F64(up.P)
	}
}

// decodeUserProbs is the inverse of encodeUserProbs.
func decodeUserProbs(d *Decoder) []server.UserProb {
	n := int(d.U32())
	pairs := make([]server.UserProb, 0, capHint(n, 16, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		pairs = append(pairs, server.UserProb{ID: d.U64(), P: d.F64()})
	}
	return pairs
}

// encodeSubResults serializes a shard's partial answers to a forwarded
// sub-batch: per entry a status byte, then either the failure cause or
// the kind-tagged partial payload (objects / NN parts / count probs).
func encodeSubResults(results []router.SubResult) []byte {
	var e Encoder
	e.U32(uint32(len(results)))
	for _, sr := range results {
		e.U32(uint32(sr.Index))
		if sr.Err != "" {
			e.U8(1)
			e.Str(sr.Err)
			continue
		}
		e.U8(0)
		e.U8(byte(sr.Kind))
		switch sr.Kind {
		case server.BatchPrivateRange:
			e.buf = append(e.buf, encodeObjects(sr.Range)...)
		case server.BatchPrivateNN:
			e.F64(sr.NN.Bound)
			e.buf = append(e.buf, encodeObjects(sr.NN.Candidates)...)
		case server.BatchPublicCount:
			encodeUserProbs(&e, sr.Count)
		}
	}
	return e.Bytes()
}

// decodeSubResults is the inverse of encodeSubResults.
func decodeSubResults(d *Decoder) ([]router.SubResult, error) {
	n := int(d.U32())
	if n > maxBatchEntries {
		return nil, fmt.Errorf("protocol: sub-batch result of %d entries exceeds the %d-entry cap", n, maxBatchEntries)
	}
	results := make([]router.SubResult, 0, capHint(n, 6, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		sr := router.SubResult{Index: int(d.U32())}
		if d.U8() != 0 {
			sr.Err = d.Str()
			if d.Err() == nil && sr.Err == "" {
				return nil, fmt.Errorf("protocol: sub-result %d failed with empty cause", i)
			}
			results = append(results, sr)
			continue
		}
		sr.Kind = server.BatchKind(d.U8())
		switch sr.Kind {
		case server.BatchPrivateRange:
			sr.Range = decodeObjects(d)
		case server.BatchPrivateNN:
			sr.NN.Bound = d.F64()
			sr.NN.Candidates = decodeObjects(d)
		case server.BatchPublicCount:
			sr.Count = decodeUserProbs(d)
		default:
			if d.Err() == nil {
				return nil, fmt.Errorf("protocol: unknown sub-result kind %d at entry %d", byte(sr.Kind), i)
			}
		}
		results = append(results, sr)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return results, nil
}

// evalSubQueries answers a forwarded sub-batch against a local server:
// range entries run the full query (per-shard answers union exactly),
// NN and count entries run their partial halves for the router to
// combine. Failure causes travel as text and are re-wrapped by the router
// with the entry's original index, so errors print identically to the
// single-server batch path.
func evalSubQueries(ctx context.Context, srv *server.Server, subs []router.SubQuery) []router.SubResult {
	out := make([]router.SubResult, 0, len(subs))
	for _, sq := range subs {
		sr := router.SubResult{Index: sq.Index, Kind: sq.Entry.Kind}
		switch sq.Entry.Kind {
		case server.BatchPrivateRange:
			objs, err := srv.PrivateRangeCtx(ctx, sq.Entry.Range)
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.Range = objs
			}
		case server.BatchPrivateNN:
			parts, err := srv.PrivateNNParts(sq.Entry.NN)
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.NN = parts
			}
		case server.BatchPublicCount:
			pairs, err := srv.PublicCountProbs(sq.Entry.Count)
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.Count = pairs
			}
		default:
			sr.Err = fmt.Sprintf("server: unknown batch query kind %d", byte(sq.Entry.Kind))
		}
		out = append(out, sr)
	}
	return out
}

// RemovePrivateCtx is RemovePrivate under a context (deadline, trace).
func (dc *DatabaseClient) RemovePrivateCtx(ctx context.Context, id uint64) error {
	var e Encoder
	e.U64(id)
	_, err := dc.c.CallCtx(ctx, MsgRemovePrivate, e.Bytes())
	return err
}

// UpdateMovingCtx is UpdateMoving under a context (deadline, trace).
func (dc *DatabaseClient) UpdateMovingCtx(ctx context.Context, id uint64, loc geo.Point) error {
	var e Encoder
	e.U64(id).Point(loc)
	_, err := dc.c.CallCtx(ctx, MsgUpdateMoving, e.Bytes())
	return err
}

// RemoveMoving deletes a moving object; the result reports whether it
// existed.
func (dc *DatabaseClient) RemoveMoving(id uint64) (bool, error) {
	return dc.RemoveMovingCtx(context.Background(), id)
}

// RemoveMovingCtx is RemoveMoving under a context (deadline, trace).
func (dc *DatabaseClient) RemoveMovingCtx(ctx context.Context, id uint64) (bool, error) {
	var e Encoder
	e.U64(id)
	resp, err := dc.c.CallCtx(ctx, MsgRemoveMoving, e.Bytes())
	if err != nil {
		return false, err
	}
	d := NewDecoder(resp)
	existed := d.U8() != 0
	return existed, d.Err()
}

// LoadStationaryCtx is LoadStationary under a context (deadline, trace).
func (dc *DatabaseClient) LoadStationaryCtx(ctx context.Context, objs []server.PublicObject) error {
	_, err := dc.c.CallCtx(ctx, MsgLoadStationary, encodeObjects(objs))
	return err
}

// StatsCtx is Stats under a context (deadline, trace).
func (dc *DatabaseClient) StatsCtx(ctx context.Context) (stationary, private int, err error) {
	resp, err := dc.c.CallCtx(ctx, MsgStats, nil)
	if err != nil {
		return 0, 0, err
	}
	d := NewDecoder(resp)
	return int(d.U32()), int(d.U32()), d.Err()
}

// NNPartsCtx fetches the shard-local half of a private NN query.
func (dc *DatabaseClient) NNPartsCtx(ctx context.Context, q server.PrivateNNQuery) (server.NNParts, error) {
	var e Encoder
	e.Rect(q.Region).Str(q.Class)
	resp, err := dc.c.CallCtx(ctx, MsgNNParts, e.Bytes())
	if err != nil {
		return server.NNParts{}, err
	}
	d := NewDecoder(resp)
	parts := server.NNParts{Bound: d.F64()}
	parts.Candidates = decodeObjects(d)
	return parts, d.Err()
}

// CountProbsCtx fetches the shard-local half of a public count.
func (dc *DatabaseClient) CountProbsCtx(ctx context.Context, q server.PublicRangeCountQuery) ([]server.UserProb, error) {
	var e Encoder
	e.Rect(q.Query)
	resp, err := dc.c.CallCtx(ctx, MsgCountProbs, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := NewDecoder(resp)
	pairs := decodeUserProbs(d)
	return pairs, d.Err()
}

// ShardBatchCtx forwards a sub-batch to one shard and returns its partial
// results.
func (dc *DatabaseClient) ShardBatchCtx(ctx context.Context, subs []router.SubQuery) ([]router.SubResult, error) {
	var e Encoder
	encodeSubQueries(&e, subs)
	resp, err := dc.c.CallCtx(ctx, MsgShardBatch, e.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeSubResults(NewDecoder(resp))
}

// ShardMap fetches a routing tier's topology.
func (dc *DatabaseClient) ShardMap() (router.Topology, error) {
	return dc.ShardMapCtx(context.Background())
}

// ShardMapCtx is ShardMap under a context (deadline, trace).
func (dc *DatabaseClient) ShardMapCtx(ctx context.Context) (router.Topology, error) {
	resp, err := dc.c.CallCtx(ctx, MsgShardMap, nil)
	if err != nil {
		return router.Topology{}, err
	}
	return decodeShardMap(NewDecoder(resp))
}
