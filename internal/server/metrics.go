package server

import "repro/internal/obs"

// Metrics are the server's monotonically increasing operation counters,
// readable without taking the server mutex. They are the observability
// surface a deployment scrapes (the database service exposes them through
// its stats message). The struct is a stable snapshot API; the live
// counters behind it are obs registry series, so the same numbers appear
// on /metrics as lbs_*_total.
type Metrics struct {
	PrivateUpdates  uint64
	PrivateRemovals uint64
	MovingUpdates   uint64
	PrivateRangeQs  uint64
	PrivateNNQs     uint64
	PublicCountQs   uint64
	PublicNNQs      uint64
	ContinuousReads uint64
	SnapshotsTaken  uint64
	RestoresApplied uint64

	// Shared-execution batch engine (batch.go).
	Batches         uint64 // BatchQuery calls served
	BatchEntries    uint64 // entries admitted across all batches
	BatchSharedHits uint64 // entries answered by another entry's descent
}

// metrics holds the server's registered obs series. Handles are registered
// once at construction and used lock-free on the hot paths.
type metrics struct {
	reg *obs.Registry

	privateUpdates  *obs.Counter
	privateRemovals *obs.Counter
	movingUpdates   *obs.Counter
	privateRangeQs  *obs.Counter
	privateNNQs     *obs.Counter
	publicCountQs   *obs.Counter
	publicNNQs      *obs.Counter
	continuousReads *obs.Counter
	snapshotsTaken  *obs.Counter
	restoresApplied *obs.Counter
	batches         *obs.Counter
	batchEntries    *obs.Counter
	batchSharedHits *obs.Counter

	// Gauges: current data-set sizes.
	privateUsers *obs.Gauge
	stationary   *obs.Gauge
	moving       *obs.Gauge
	contQueries  *obs.Gauge

	// Per-query-class latency histograms (seconds).
	latPrivateRange *obs.Histogram
	latPrivateNN    *obs.Histogram
	latPublicCount  *obs.Histogram
	latPublicNN     *obs.Histogram

	// Query-shape distributions.
	candidates   *obs.Histogram // private-NN candidate set size
	falsePosFrac *obs.Histogram // fraction of NN candidates refinement discards
	nodeVisits   *obs.Histogram // index nodes visited per query
	batchSize    *obs.Histogram // entries per BatchQuery call
	batchGroups  *obs.Histogram // independent work units per batch
	latBatch     *obs.Histogram // whole-batch latency (seconds)
}

// newMetrics registers the server's series in reg (a fresh private registry
// when nil).
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lat := func(class string) *obs.Histogram {
		return reg.Histogram("lbs_query_seconds",
			"Database query latency by query class.",
			obs.DefaultLatencyBuckets, obs.L("class", class))
	}
	return &metrics{
		reg: reg,

		privateUpdates:  reg.Counter("lbs_private_updates_total", "Cloaked-region updates stored."),
		privateRemovals: reg.Counter("lbs_private_removals_total", "Private user deregistrations."),
		movingUpdates:   reg.Counter("lbs_moving_updates_total", "Moving public-object updates."),
		privateRangeQs:  reg.Counter("lbs_private_range_queries_total", "Private range queries served."),
		privateNNQs:     reg.Counter("lbs_private_nn_queries_total", "Private nearest-neighbor queries served."),
		publicCountQs:   reg.Counter("lbs_public_count_queries_total", "Public probabilistic count queries served."),
		publicNNQs:      reg.Counter("lbs_public_nn_queries_total", "Public nearest-neighbor queries served."),
		continuousReads: reg.Counter("lbs_continuous_reads_total", "Continuous-query answer reads."),
		snapshotsTaken:  reg.Counter("lbs_snapshots_total", "State snapshots written."),
		restoresApplied: reg.Counter("lbs_restores_total", "State snapshots restored."),
		batches:         reg.Counter("lbs_batch_queries_total", "Shared-execution batch query calls served."),
		batchEntries:    reg.Counter("lbs_batch_entries_total", "Query entries admitted across all batches."),
		batchSharedHits: reg.Counter("lbs_batch_shared_hits_total", "Batch entries answered by a shared index descent another entry initiated."),

		privateUsers: reg.Gauge("lbs_private_users", "Anonymized users currently tracked (cloaked regions stored)."),
		stationary:   reg.Gauge("lbs_stationary_objects", "Stationary public objects indexed."),
		moving:       reg.Gauge("lbs_moving_objects", "Moving public objects indexed."),
		contQueries:  reg.Gauge("lbs_continuous_queries", "Standing continuous queries registered."),

		latPrivateRange: lat("private_range"),
		latPrivateNN:    lat("private_nn"),
		latPublicCount:  lat("public_count"),
		latPublicNN:     lat("public_nn"),

		candidates: reg.Histogram("lbs_private_nn_candidates",
			"Private-NN candidate set size after dominance pruning.",
			obs.CountBuckets),
		falsePosFrac: reg.Histogram("lbs_private_nn_false_positive_ratio",
			"Fraction of returned NN candidates client refinement will discard.",
			obs.RatioBuckets),
		nodeVisits: reg.Histogram("lbs_index_node_visits",
			"Spatial-index nodes visited per query.",
			obs.CountBuckets),
		batchSize: reg.Histogram("lbs_batch_size",
			"Entries per shared-execution batch query.",
			obs.CountBuckets),
		batchGroups: reg.Histogram("lbs_batch_groups",
			"Independent work units (shared descents + NN entries) per batch.",
			obs.CountBuckets),
		latBatch: reg.Histogram("lbs_batch_seconds",
			"Whole-batch query latency.",
			obs.DefaultLatencyBuckets),
	}
}

// observeNNAnswer records the candidate-set distributions for one private
// NN answer of n candidates. Exactly one candidate is the true nearest
// neighbor after client refinement, so the false-positive ratio of the
// answer is (n-1)/n.
func (m *metrics) observeNNAnswer(n int) {
	m.candidates.Observe(float64(n))
	if n > 0 {
		m.falsePosFrac.Observe(float64(n-1) / float64(n))
	}
}

// Registry returns the registry the server's series live in — the handle a
// daemon mounts on its /metrics endpoint and exposes over the wire.
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// Metrics returns a snapshot of the counters. The snapshot is not
// atomic across fields, so ordered pairs are read dependent-first:
// BatchQuery adds entries before shared hits, and reading shared hits
// before entries here means any interleaving observes
// SharedHits ≤ Entries — reading them the other way round lets batches
// that complete between the two loads inflate SharedHits past the
// already-captured Entries value.
func (s *Server) Metrics() Metrics {
	sharedHits := s.met.batchSharedHits.Value()
	batchEntries := s.met.batchEntries.Value()
	return Metrics{
		PrivateUpdates:  s.met.privateUpdates.Value(),
		PrivateRemovals: s.met.privateRemovals.Value(),
		MovingUpdates:   s.met.movingUpdates.Value(),
		PrivateRangeQs:  s.met.privateRangeQs.Value(),
		PrivateNNQs:     s.met.privateNNQs.Value(),
		PublicCountQs:   s.met.publicCountQs.Value(),
		PublicNNQs:      s.met.publicNNQs.Value(),
		ContinuousReads: s.met.continuousReads.Value(),
		SnapshotsTaken:  s.met.snapshotsTaken.Value(),
		RestoresApplied: s.met.restoresApplied.Value(),
		Batches:         s.met.batches.Value(),
		BatchEntries:    batchEntries,
		BatchSharedHits: sharedHits,
	}
}
