package loader

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeSite is one heap allocation the compiler's escape analysis
// reported for a package: either "moved to heap: x" (a stack variable
// forced to the heap) or "<expr> escapes to heap" (a composite/call
// result allocated on the heap).
type EscapeSite struct {
	File string // base name, e.g. "batch.go"
	Line int
	Col  int
	Msg  string // the diagnostic text after "file:line:col: "
}

// EscapeSet holds the escape diagnostics for one package, indexed for
// per-function range queries by the hotalloc pass.
type EscapeSet struct {
	Sites []EscapeSite
}

// CountRange returns the number of escape sites attributed to the given
// file between startLine and endLine inclusive — the line span of an
// annotated function declaration.
func (s *EscapeSet) CountRange(file string, startLine, endLine int) int {
	n := 0
	for _, site := range s.Sites {
		if site.File == file && site.Line >= startLine && site.Line <= endLine {
			n++
		}
	}
	return n
}

// SitesRange returns the escape sites in the given file/line span, for
// diagnostic detail.
func (s *EscapeSet) SitesRange(file string, startLine, endLine int) []EscapeSite {
	var out []EscapeSite
	for _, site := range s.Sites {
		if site.File == file && site.Line >= startLine && site.Line <= endLine {
			out = append(out, site)
		}
	}
	return out
}

var escLineRE = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

// isEscapeMsg reports whether one -m diagnostic line describes a heap
// allocation. Inlining notes, "does not escape" confirmations and
// "leaking param" summaries are informational, not allocations.
func isEscapeMsg(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap:") {
		return true
	}
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.HasSuffix(msg, "escapes to heap")
}

// Escapes shells out to `go build -gcflags=-m` for the single package
// rooted at dir and parses the compiler's escape diagnostics. The go
// command replays cached compiler output on cache hits, so repeat runs
// are cheap and still produce the full diagnostic stream. mainPkg
// selects an -o /dev/null style sink so building a command does not
// drop a binary into the package directory.
func Escapes(dir string, mainPkg bool) (*EscapeSet, error) {
	args := []string{"build", "-gcflags=-m"}
	if mainPkg {
		tmp, err := os.CreateTemp("", "lbsvet-hotalloc-*")
		if err != nil {
			return nil, err
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		args = append(args, "-o", tmp.Name())
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stdout = &stderr
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		// A failing build means the diagnostics are incomplete; surface
		// the compiler output rather than reporting a bogus zero count.
		out := stderr.String()
		if len(out) > 2000 {
			out = out[:2000] + "…"
		}
		return nil, fmt.Errorf("go build -gcflags=-m in %s: %v\n%s", dir, err, out)
	}

	set := &EscapeSet{}
	seen := make(map[EscapeSite]bool)
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !isEscapeMsg(msg) {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		site := EscapeSite{File: filepath.Base(m[1]), Line: line, Col: col, Msg: msg}
		if seen[site] {
			continue
		}
		seen[site] = true
		set.Sites = append(set.Sites, site)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
