package router

import "sort"

// ring is a consistent-hash ring mapping tile ids to shards. Each shard
// contributes vnodes points whose positions depend only on (shard index,
// vnode index) — never on how many shards are in the ring — so adding a
// shard steals tiles only for the new shard, and removing one reassigns
// only the tiles it owned. Those two stability properties are exact (not
// probabilistic) and the rehashing property test pins them down.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds a ring for shards 0..nshards-1 with the given number of
// virtual nodes per shard.
func newRing(nshards, vnodes int) ring {
	shards := make([]int, nshards)
	for i := range shards {
		shards[i] = i
	}
	return newRingOf(shards, vnodes)
}

// newRingOf builds a ring over an explicit shard set — the form the
// rehashing stability test exercises: the ring over {0..n-1} minus shard
// k must agree with the full ring everywhere except on tiles k owned.
func newRingOf(shards []int, vnodes int) ring {
	pts := make([]ringPoint, 0, len(shards)*vnodes)
	for _, s := range shards {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, ringPoint{hash: mix64(uint64(s)<<32 | uint64(v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Ties broken by shard index so the ring order is deterministic
		// regardless of shard count.
		return a.shard < b.shard
	})
	return ring{points: pts}
}

// owner returns the shard owning tile t: the first ring point at or after
// the tile's hash, wrapping around.
func (r ring) owner(t int) int {
	h := mix64(0x9e3779b97f4a7c15 ^ uint64(t))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// on uint64 used for both vnode placement and tile hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
