// Package rtree implements an in-memory R-tree over point data: the
// spatial index the privacy-aware database server uses for its public data
// (gas stations, restaurants, hospitals, ...). It supports quadratic-split
// insertion, deletion with subtree reinsertion, Sort-Tile-Recursive (STR)
// bulk loading, rectangle range search, and best-first (priority-queue)
// nearest-neighbor search including incremental distance browsing — the
// primitive behind the private nearest-neighbor query processor.
package rtree

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Item is an indexed point object.
type Item struct {
	ID  uint64
	Loc geo.Point
}

const (
	// maxEntries is the node fan-out M; minEntries is the fill factor m.
	maxEntries = 16
	minEntries = maxEntries * 2 / 5 // 40% minimum fill, the classic choice
)

// child is an inner-node entry: the child's bounding rectangle stored
// inline next to the pointer so a descent decides which subtrees to enter
// from one contiguous scan of the parent's entry array, without chasing a
// pointer per child just to read its rectangle. The inline copy must equal
// child.n.bounds at all times (checkInvariants enforces it).
type child struct {
	bounds geo.Rect
	n      *node
}

type node struct {
	bounds   geo.Rect
	leaf     bool
	items    []Item  // populated when leaf
	children []child // populated when !leaf
}

func (n *node) recomputeBounds() {
	if n.leaf {
		if len(n.items) == 0 {
			n.bounds = geo.Rect{}
			return
		}
		b := geo.PointRect(n.items[0].Loc)
		for _, it := range n.items[1:] {
			b = b.UnionPoint(it.Loc)
		}
		n.bounds = b
		return
	}
	if len(n.children) == 0 {
		n.bounds = geo.Rect{}
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// Tree is an R-tree over point items. The zero value is an empty tree ready
// to use. Tree is not safe for concurrent mutation; the server guards it
// with its own lock.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Bounds returns the bounding rectangle of all items and false if empty.
func (t *Tree) Bounds() (geo.Rect, bool) {
	if t.root == nil || t.size == 0 {
		return geo.Rect{}, false
	}
	return t.root.bounds, true
}

// Insert adds an item to the tree. Duplicate IDs are permitted by the tree
// itself (the server layer enforces uniqueness).
func (t *Tree) Insert(it Item) {
	if t.root == nil {
		t.root = &node{leaf: true, items: []Item{it}, bounds: geo.PointRect(it.Loc)}
		t.size = 1
		return
	}
	split := t.insert(t.root, it)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf: false,
			children: []child{
				{bounds: old.bounds, n: old},
				{bounds: split.bounds, n: split},
			},
		}
		t.root.recomputeBounds()
	}
	t.size++
}

// insert descends to a leaf, adds the item, and returns a new sibling if
// the node had to split (to be linked by the caller).
func (t *Tree) insert(n *node, it Item) *node {
	n.bounds = n.bounds.UnionPoint(it.Loc)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n.children, it.Loc)
	split := t.insert(n.children[best].n, it)
	n.children[best].bounds = n.children[best].n.bounds
	if split != nil {
		n.children = append(n.children, child{bounds: split.bounds, n: split})
		if len(n.children) > maxEntries {
			return splitInner(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose bounds need the least enlargement to
// include p, breaking ties by smaller area (the classic Guttman heuristic).
func chooseSubtree(children []child, p geo.Point) int {
	best := 0
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range children {
		b := children[i].bounds
		area := b.Area()
		enlarged := b.UnionPoint(p).Area() - area
		if enlarged < bestEnlarge || (enlarged == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarged, area
		}
	}
	return best
}

// splitLeaf performs a quadratic split of an overflowing leaf, mutating n
// to hold one group and returning a new node with the other.
func splitLeaf(n *node) *node {
	items := n.items
	// Pick the two seeds wasting the most area if grouped together.
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			waste := geo.PointRect(items[i].Loc).UnionPoint(items[j].Loc).Area()
			if waste > worst {
				worst, si, sj = waste, i, j
			}
		}
	}
	g1 := []Item{items[si]}
	g2 := []Item{items[sj]}
	b1 := geo.PointRect(items[si].Loc)
	b2 := geo.PointRect(items[sj].Loc)
	rest := make([]Item, 0, len(items)-2)
	for k, it := range items {
		if k != si && k != sj {
			rest = append(rest, it)
		}
	}
	for idx, it := range rest {
		// Force-assign when one group must absorb everything left to reach
		// the minimum fill.
		remaining := len(rest) - idx
		if len(g1)+remaining <= minEntries {
			g1 = append(g1, it)
			b1 = b1.UnionPoint(it.Loc)
			continue
		}
		if len(g2)+remaining <= minEntries {
			g2 = append(g2, it)
			b2 = b2.UnionPoint(it.Loc)
			continue
		}
		d1 := b1.UnionPoint(it.Loc).Area() - b1.Area()
		d2 := b2.UnionPoint(it.Loc).Area() - b2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, it)
			b1 = b1.UnionPoint(it.Loc)
		} else {
			g2 = append(g2, it)
			b2 = b2.UnionPoint(it.Loc)
		}
	}
	n.items = g1
	n.bounds = b1
	return &node{leaf: true, items: g2, bounds: b2}
}

// splitInner is the quadratic split for internal nodes.
func splitInner(n *node) *node {
	ch := n.children
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(ch); i++ {
		for j := i + 1; j < len(ch); j++ {
			waste := ch[i].bounds.Union(ch[j].bounds).Area() - ch[i].bounds.Area() - ch[j].bounds.Area()
			if waste > worst {
				worst, si, sj = waste, i, j
			}
		}
	}
	g1 := []child{ch[si]}
	g2 := []child{ch[sj]}
	b1 := ch[si].bounds
	b2 := ch[sj].bounds
	rest := make([]child, 0, len(ch)-2)
	for k, c := range ch {
		if k != si && k != sj {
			rest = append(rest, c)
		}
	}
	for idx, c := range rest {
		remaining := len(rest) - idx
		if len(g1)+remaining <= minEntries {
			g1 = append(g1, c)
			b1 = b1.Union(c.bounds)
			continue
		}
		if len(g2)+remaining <= minEntries {
			g2 = append(g2, c)
			b2 = b2.Union(c.bounds)
			continue
		}
		d1 := b1.Union(c.bounds).Area() - b1.Area()
		d2 := b2.Union(c.bounds).Area() - b2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, c)
			b1 = b1.Union(c.bounds)
		} else {
			g2 = append(g2, c)
			b2 = b2.Union(c.bounds)
		}
	}
	n.children = g1
	n.bounds = b1
	return &node{leaf: false, children: g2, bounds: b2}
}

// Delete removes the item with the given ID at the given location.
// It returns false if no such item exists. Underfull nodes are dissolved
// and their remaining entries reinserted (the Guttman condense step).
func (t *Tree) Delete(id uint64, loc geo.Point) bool {
	if t.root == nil {
		return false
	}
	var orphans []Item
	removed := t.remove(t.root, id, loc, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Collapse a root with a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0].n
	}
	if t.root.leaf && len(t.root.items) == 0 {
		t.root = nil
	}
	for _, it := range orphans {
		t.size-- // Insert will re-increment
		t.Insert(it)
	}
	return true
}

func (t *Tree) remove(n *node, id uint64, loc geo.Point, orphans *[]Item) bool {
	if !n.bounds.Contains(loc) {
		return false
	}
	if n.leaf {
		for i, it := range n.items {
			if it.ID == id && it.Loc.Eq(loc) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeBounds()
				return true
			}
		}
		return false
	}
	for i := range n.children {
		c := n.children[i].n
		if !t.remove(c, id, loc, orphans) {
			continue
		}
		// Condense: dissolve underfull children into the orphan list.
		if (c.leaf && len(c.items) < minEntries) || (!c.leaf && len(c.children) < minEntries) {
			collectItems(c, orphans)
			n.children = append(n.children[:i], n.children[i+1:]...)
		} else {
			n.children[i].bounds = c.bounds
		}
		n.recomputeBounds()
		return true
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for i := range n.children {
		collectItems(n.children[i].n, out)
	}
}

// Search appends to dst every item whose location lies inside r (closed
// rectangle semantics) and returns the extended slice.
func (t *Tree) Search(r geo.Rect, dst []Item) []Item {
	out, _ := t.SearchVisits(r, dst)
	return out
}

// SearchVisits is Search plus the number of tree nodes visited — the index
// I/O proxy the observability layer exports per query.
func (t *Tree) SearchVisits(r geo.Rect, dst []Item) ([]Item, int) {
	if t.root == nil || !t.root.bounds.Intersects(r) {
		return dst, 0
	}
	visits := 0
	dst = searchNode(t.root, r, dst, &visits)
	return dst, visits
}

// searchNode collects matches from a subtree whose bounds are already
// known to intersect r (the caller filters on the inline child rectangles,
// so a non-intersecting subtree is never entered).
func searchNode(n *node, r geo.Rect, dst []Item, visits *int) []Item {
	*visits++
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.Loc) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for i := range n.children {
		c := &n.children[i]
		if c.bounds.Intersects(r) {
			dst = searchNode(c.n, r, dst, visits)
		}
	}
	return dst
}

// Count returns the number of items inside r without materializing them.
func (t *Tree) Count(r geo.Rect) int {
	if t.root == nil || !t.root.bounds.Intersects(r) {
		return 0
	}
	return countNode(t.root, r)
}

// countNode counts matches in a subtree already known to intersect r.
func countNode(n *node, r geo.Rect) int {
	if n.leaf {
		c := 0
		for _, it := range n.items {
			if r.Contains(it.Loc) {
				c++
			}
		}
		return c
	}
	if r.ContainsRect(n.bounds) {
		return subtreeSize(n)
	}
	c := 0
	for i := range n.children {
		ch := &n.children[i]
		if ch.bounds.Intersects(r) {
			c += countNode(ch.n, r)
		}
	}
	return c
}

func subtreeSize(n *node) int {
	if n.leaf {
		return len(n.items)
	}
	c := 0
	for i := range n.children {
		c += subtreeSize(n.children[i].n)
	}
	return c
}

// All appends every item to dst in tree order and returns the slice.
func (t *Tree) All(dst []Item) []Item {
	if t.root == nil {
		return dst
	}
	var walk func(*node)
	walk = func(n *node) {
		if n.leaf {
			dst = append(dst, n.items...)
			return
		}
		for i := range n.children {
			walk(n.children[i].n)
		}
	}
	walk(t.root)
	return dst
}

// stats support for tests and the depth ablation.

// Depth returns the height of the tree (0 for empty, 1 for a single leaf).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf {
			break
		}
		n = n.children[0].n
	}
	return d
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("nil root with size %d", t.size)
		}
		return nil
	}
	n, err := checkNode(t.root, true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("size %d but %d items reachable", t.size, n)
	}
	return nil
}

func checkNode(n *node, isRoot bool) (int, error) {
	// Minimum fill is a packing heuristic, not a correctness invariant:
	// STR bulk loading legitimately leaves one underfull node per level, so
	// the checker enforces only non-emptiness and the maximum fan-out.
	if n.leaf {
		if !isRoot && (len(n.items) == 0 || len(n.items) > maxEntries) {
			return 0, fmt.Errorf("leaf fill %d outside [1,%d]", len(n.items), maxEntries)
		}
		for _, it := range n.items {
			if !n.bounds.Contains(it.Loc) {
				return 0, fmt.Errorf("item %d outside leaf bounds", it.ID)
			}
		}
		return len(n.items), nil
	}
	if !isRoot && (len(n.children) == 0 || len(n.children) > maxEntries) {
		return 0, fmt.Errorf("inner fill %d outside [1,%d]", len(n.children), maxEntries)
	}
	total := 0
	for i := range n.children {
		c := &n.children[i]
		// The inline rectangle is a cache of the child's own bounds; any
		// drift means a mutation path forgot to refresh it.
		if !c.bounds.Eq(c.n.bounds) {
			return 0, fmt.Errorf("inline child bounds %v stale vs node bounds %v", c.bounds, c.n.bounds)
		}
		if !n.bounds.ContainsRect(c.bounds) {
			return 0, fmt.Errorf("child bounds %v escape parent %v", c.bounds, n.bounds)
		}
		sub, err := checkNode(c.n, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
