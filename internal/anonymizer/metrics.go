package anonymizer

import (
	"strconv"

	"repro/internal/cloak"
	"repro/internal/obs"
)

// anonMetrics holds the anonymizer's registered obs series. The cloaking
// algorithm is fixed per Anonymizer, so the per-algorithm label is bound
// once at construction and the hot path pays only atomic operations; the
// same goes for the per-shard counters, bound once per stripe.
type anonMetrics struct {
	reg *obs.Registry

	cloakLat  *obs.Histogram // anon_cloak_seconds{alg}
	batchLat  *obs.Histogram // anon_batch_seconds{alg}
	batchSize *obs.Histogram // anon_batch_size{alg}
	area      *obs.Histogram // anon_cloak_area{alg}
	k         *obs.Histogram // anon_cloak_k{alg}

	updates     *obs.Counter
	queries     *obs.Counter
	relaxations *obs.Counter // best-effort results (some constraint missed)
	kMissed     *obs.Counter // k-anonymity itself missed — the hard failure
	reuseHits   *obs.Counter
	forwarded   *obs.Counter
	forwardErrs *obs.Counter
	batches     *obs.Counter // batch pipeline passes completed
	sharedHits  *obs.Counter // requests served from a shared descent

	// Per-shard operation counters: anon_shard_ops_total{shard}. Uneven
	// values reveal a skewed id→shard distribution.
	shardOps []*obs.Counter

	// Forward spill-queue series: the graceful-degradation path used when
	// the downstream database link fails.
	spills     *obs.Counter // regions parked in the replay queue
	replays    *obs.Counter // queued regions delivered after recovery
	queueDrops *obs.Counter // oldest entries evicted from a full queue
	sheds      *obs.Counter // updates refused under forward backpressure

	registered   *obs.Gauge
	tracked      *obs.Gauge
	reuseRate    *obs.Gauge // reused / (updates+queries), 0..1
	queueDepth   *obs.Gauge // regions currently awaiting replay
	shards       *obs.Gauge // configured lock-stripe count
	batchWorkers *obs.Gauge // resolved batch worker-pool size
}

// newAnonMetrics registers the anonymizer's series in reg (a fresh private
// registry when nil), labelling the per-cloak distributions with alg and
// the per-shard counters with their stripe index.
func newAnonMetrics(reg *obs.Registry, alg Algorithm, shards int) *anonMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := obs.L("alg", alg.String())
	m := &anonMetrics{
		reg: reg,

		cloakLat: reg.Histogram("anon_cloak_seconds",
			"Latency of one cloaking computation.", obs.DefaultLatencyBuckets, l),
		batchLat: reg.Histogram("anon_batch_seconds",
			"Latency of one shared (batch) cloaking pass.", obs.DefaultLatencyBuckets, l),
		batchSize: reg.Histogram("anon_batch_size",
			"Requests per batch-update pass.", obs.CountBuckets, l),
		area: reg.Histogram("anon_cloak_area",
			"Cloaked-region area (world units squared).", obs.AreaBuckets, l),
		k: reg.Histogram("anon_cloak_k",
			"Anonymity actually achieved (users in the cloaked region).", obs.CountBuckets, l),

		updates:     reg.Counter("anon_updates_total", "Location updates processed."),
		queries:     reg.Counter("anon_queries_total", "Query cloaks processed."),
		relaxations: reg.Counter("anon_cloak_relaxations_total", "Cloaks that missed at least one profile constraint (best effort)."),
		kMissed:     reg.Counter("anon_cloak_k_missed_total", "Cloaks that missed the k-anonymity requirement itself."),
		reuseHits:   reg.Counter("anon_reuse_hits_total", "Updates served from a still-valid incremental region."),
		forwarded:   reg.Counter("anon_forwarded_total", "Cloaked regions forwarded downstream."),
		forwardErrs: reg.Counter("anon_forward_errors_total", "Downstream forward failures."),
		batches:     reg.Counter("anon_batches_total", "Batch-update pipeline passes completed."),
		sharedHits:  reg.Counter("anon_batch_shared_hits_total", "Batched requests served from a shared descent instead of their own computation."),

		spills:     reg.Counter("anon_forward_spills_total", "Cloaked regions spilled into the replay queue while the database link was down."),
		replays:    reg.Counter("anon_forward_replays_total", "Spilled regions replayed downstream after the link recovered."),
		queueDrops: reg.Counter("anon_forward_queue_drops_total", "Oldest spilled regions evicted because the replay queue was full."),
		sheds:      reg.Counter("anon_overload_sheds_total", "Updates refused with ErrOverloaded under forward backpressure."),

		registered:   reg.Gauge("anon_registered_users", "Users registered with a privacy profile."),
		tracked:      reg.Gauge("anon_tracked_users", "Users currently present in the spatial indices."),
		reuseRate:    reg.Gauge("anon_reuse_rate", "Incremental-reuse hit rate over all processed operations (0..1)."),
		queueDepth:   reg.Gauge("anon_forward_queue_depth", "Cloaked regions currently parked awaiting replay."),
		shards:       reg.Gauge("anon_shards", "Configured per-user state lock stripes."),
		batchWorkers: reg.Gauge("anon_batch_workers", "Worker-pool size of the batch cloaking phase."),
	}
	m.shardOps = make([]*obs.Counter, shards)
	for i := range m.shardOps {
		m.shardOps[i] = reg.Counter("anon_shard_ops_total",
			"Operations processed per state shard.", obs.L("shard", strconv.Itoa(i)))
	}
	return m
}

// observeResult records the per-cloak distributions for one result.
func (m *anonMetrics) observeResult(res cloak.Result) {
	m.area.Observe(res.Region.Area())
	m.k.Observe(float64(res.K))
	if res.BestEffort() {
		m.relaxations.Inc()
	}
	if !res.SatisfiedK {
		m.kMissed.Inc()
	}
	if res.Reused {
		m.reuseHits.Inc()
	}
}

// setReuseRate refreshes the hit-rate gauge from the atomic activity
// counters.
func (m *anonMetrics) setReuseRate(c *counters) {
	total := c.updates.Load() + c.queries.Load()
	if total > 0 {
		m.reuseRate.Set(float64(c.reused.Load()) / float64(total))
	}
}

// Registry returns the registry the anonymizer's series live in — the
// handle a daemon mounts on its /metrics endpoint and exposes over the
// wire.
func (a *Anonymizer) Registry() *obs.Registry { return a.met.reg }
