package main

import (
	"strings"
	"testing"
)

// Synthetic reports for the comparison/gate logic shared by the two bench
// harnesses. Throughputs are arbitrary round numbers; only the ratios and
// the environment fields matter to the code under test.

func anonReport(numcpu int, ups float64) benchReport {
	return benchReport{
		Schema: "anonymizer-bench/v2", NumCPU: numcpu, GoVersion: "go1.x", Users: 1000,
		Procs: []benchProc{
			{GoMaxProcs: 1, Entries: []benchEntry{
				{Mode: "batch", Shards: 1, Workers: 1, UpdatesPerSec: ups},
			}},
			{GoMaxProcs: 8, Entries: []benchEntry{
				{Mode: "batch", Shards: 1, Workers: 1, UpdatesPerSec: ups},
			}},
		},
	}
}

func serverReport(numcpu int, perquery, batch4 float64) serverBenchReport {
	mk := func(procs int) serverBenchProc {
		return serverBenchProc{
			GoMaxProcs: procs,
			Entries: []serverBenchEntry{
				{Mode: "perquery", Workers: 1, QueriesPerSec: perquery},
				{Mode: "batch", Workers: 4, QueriesPerSec: batch4},
			},
			SpeedupBatch4: batch4 / perquery,
		}
	}
	return serverBenchReport{
		Schema: "server-bench/v2", NumCPU: numcpu, GoVersion: "go1.x",
		Users: 1000, Objects: 1000,
		Procs: []serverBenchProc{mk(1), mk(4), mk(8)},
	}
}

func wantRegression(t *testing.T, regs []string, substr string) {
	t.Helper()
	for _, r := range regs {
		if strings.Contains(r, substr) {
			return
		}
	}
	t.Fatalf("no regression containing %q in %q", substr, regs)
}

// A NumCPU mismatch must hard-fail in BOTH harnesses: per-proc scaling
// numbers from different physical machines are not comparable, and a
// warning that CI scrolls past is as good as no check at all.
func TestNumCPUMismatchHardFailsBothHarnesses(t *testing.T) {
	if regs := checkBenchEnv(8, 4); len(regs) != 1 {
		t.Fatalf("checkBenchEnv(8, 4) = %q, want one hard failure", regs)
	}
	if regs := checkBenchEnv(4, 4); len(regs) != 0 {
		t.Fatalf("checkBenchEnv(4, 4) = %q, want none", regs)
	}
	// Legacy baselines without the field (0) are exempt.
	if regs := checkBenchEnv(0, 4); len(regs) != 0 {
		t.Fatalf("checkBenchEnv(0, 4) = %q, want none", regs)
	}

	regs := compareBench(anonReport(4, 1000), anonReport(8, 1000), 0.5)
	wantRegression(t, regs, "environment mismatch")
	regs = compareServerBench(serverReport(4, 100, 250), serverReport(8, 100, 250), 0.5, 2.0)
	wantRegression(t, regs, "environment mismatch")
}

func TestCompareBenchToleranceGate(t *testing.T) {
	base := anonReport(4, 1000)
	// 30% drop against a 50% tolerance: fine.
	if regs := compareBench(anonReport(4, 700), base, 0.5); len(regs) != 0 {
		t.Fatalf("within-tolerance drop flagged: %q", regs)
	}
	// 60% drop: regression on the pinned proc.
	regs := compareBench(anonReport(4, 400), base, 0.5)
	wantRegression(t, regs, "procs=1/batch/shards=1")
}

// Pinned procs missing from the current run are regressions; informational
// procs (8 here, on a pinned set of {1, 4}) silently drop out.
func TestCompareBenchMissingSeries(t *testing.T) {
	base := anonReport(4, 1000)
	current := anonReport(4, 1000)
	current.Procs = current.Procs[1:] // drop the procs=1 series, keep procs=8
	regs := compareBench(current, base, 0.5)
	wantRegression(t, regs, "procs=1/batch/shards=1: missing")

	current = anonReport(4, 1000)
	current.Procs = current.Procs[:1] // drop the informational procs=8 series
	if regs := compareBench(current, base, 0.5); len(regs) != 0 {
		t.Fatalf("missing informational series flagged: %q", regs)
	}
}

// The ≥2× shared-execution gate applies at pinned procs ≥ 4 only: procs=1
// cannot exhibit worker parallelism and procs=8 is unpinned hardware.
func TestServerSpeedupGate(t *testing.T) {
	if regs := checkServerSpeedupGate(serverReport(4, 100, 250), 2.0); len(regs) != 0 {
		t.Fatalf("2.5x flagged against a 2.0x gate: %q", regs)
	}
	regs := checkServerSpeedupGate(serverReport(4, 100, 150), 2.0)
	wantRegression(t, regs, "gomaxprocs=4")
	if len(regs) != 1 {
		t.Fatalf("gate fired off the pinned procs≥4 cell: %q", regs)
	}
}

// compareServerBench re-checks the gate on the BASELINE too: a committed
// baseline that cannot prove the headline claim is itself a failure.
func TestCompareServerBenchBaselineGate(t *testing.T) {
	regs := compareServerBench(serverReport(4, 100, 250), serverReport(4, 100, 150), 0.5, 2.0)
	wantRegression(t, regs, "baseline gomaxprocs=4")
}

func TestCompareServerBenchWorkloadMismatch(t *testing.T) {
	base := serverReport(4, 100, 250)
	current := serverReport(4, 100, 250)
	current.Objects = 9999
	regs := compareServerBench(current, base, 0.5, 2.0)
	wantRegression(t, regs, "workload mismatch")
}
