package cloak

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/pyramid"
)

// Temporal implements spatio-temporal cloaking in the Gruteser–Grunwald
// style the paper builds on (its reference [18]): instead of enlarging the
// spatial region until k users are inside *now*, an update is delayed and
// released only once at least k distinct users have visited its cell since
// the update arrived. The released answer blurs the user in space (the
// cell) *and* time (the interval [ArrivedAt, ReleasedAt]) — anyone of the
// k visitors could have been the reporter at some moment in the interval.
//
// Temporal cloaking trades latency for area: a dense cell releases almost
// immediately, a sparse one accumulates visitors over time instead of
// ballooning spatially. The MaxDelay bound keeps updates from starving; an
// update that times out is released unsatisfied so the caller can fall
// back to spatial cloaking.
//
// Time is modeled as integer ticks driven by the caller (the anonymizer's
// update loop), keeping the component deterministic and testable.
type Temporal struct {
	pyr   *pyramid.Pyramid
	level int
	// MaxDelay is the maximum number of ticks an update may wait.
	maxDelay int64

	now      int64
	pending  []*pendingUpdate
	visitors map[pyramid.Cell]map[uint64]int64 // cell -> user -> last visit tick
}

type pendingUpdate struct {
	id        uint64
	cell      pyramid.Cell
	k         int
	arrivedAt int64
}

// TemporalRelease is one matured (or expired) update.
type TemporalRelease struct {
	ID     uint64
	Region geo.Rect
	// From/To is the temporal cloak: the reporter was in Region at some
	// point within [From, To].
	From, To int64
	// K is the number of distinct visitors accumulated (including the
	// reporter).
	K int
	// Satisfied is false when MaxDelay expired before k visitors arrived.
	Satisfied bool
}

// NewTemporal builds a temporal cloaker over a fixed level of the pyramid
// partition. The pyramid is used only for cell geometry; counts are
// tracked internally because temporal cloaking needs *visit history*, not
// instantaneous occupancy.
func NewTemporal(pyr *pyramid.Pyramid, level int, maxDelay int) (*Temporal, error) {
	if pyr == nil {
		return nil, fmt.Errorf("cloak: nil pyramid")
	}
	if level < 0 || level >= pyr.Height() {
		return nil, fmt.Errorf("cloak: temporal level %d outside [0,%d)", level, pyr.Height())
	}
	if maxDelay < 1 {
		return nil, fmt.Errorf("cloak: MaxDelay %d must be ≥ 1", maxDelay)
	}
	return &Temporal{
		pyr:      pyr,
		level:    level,
		maxDelay: int64(maxDelay),
		visitors: make(map[pyramid.Cell]map[uint64]int64),
	}, nil
}

// Now returns the current tick.
func (t *Temporal) Now() int64 { return t.now }

// PendingCount returns the number of updates waiting for release.
func (t *Temporal) PendingCount() int { return len(t.pending) }

// Observe records that the user is at loc on the current tick. If the user
// requests anonymity k, her update is queued for release; k ≤ 1 means the
// visit only feeds other users' anonymity sets.
func (t *Temporal) Observe(id uint64, loc geo.Point, k int) {
	cell := t.pyr.CellAt(t.level, loc)
	m, ok := t.visitors[cell]
	if !ok {
		m = make(map[uint64]int64)
		t.visitors[cell] = m
	}
	m[id] = t.now
	if k > 1 {
		t.pending = append(t.pending, &pendingUpdate{
			id: id, cell: cell, k: k, arrivedAt: t.now,
		})
	}
}

// Tick advances time and returns the updates that matured (k distinct
// visitors since arrival) or expired (MaxDelay reached) this tick.
func (t *Temporal) Tick() []TemporalRelease {
	t.now++
	var released []TemporalRelease
	remaining := t.pending[:0]
	for _, p := range t.pending {
		count := t.visitorsSince(p.cell, p.arrivedAt)
		switch {
		case count >= p.k:
			released = append(released, TemporalRelease{
				ID:        p.id,
				Region:    t.pyr.Rect(p.cell),
				From:      p.arrivedAt,
				To:        t.now,
				K:         count,
				Satisfied: true,
			})
		case t.now-p.arrivedAt >= t.maxDelay:
			released = append(released, TemporalRelease{
				ID:        p.id,
				Region:    t.pyr.Rect(p.cell),
				From:      p.arrivedAt,
				To:        t.now,
				K:         count,
				Satisfied: false,
			})
		default:
			remaining = append(remaining, p)
		}
	}
	t.pending = remaining
	t.gc()
	return released
}

// visitorsSince counts distinct users seen in the cell at or after tick.
func (t *Temporal) visitorsSince(cell pyramid.Cell, tick int64) int {
	n := 0
	for _, last := range t.visitors[cell] {
		if last >= tick {
			n++
		}
	}
	return n
}

// gc drops visitor records older than MaxDelay — they can never satisfy
// any live or future pending update.
func (t *Temporal) gc() {
	horizon := t.now - t.maxDelay
	for cell, m := range t.visitors {
		for id, last := range m {
			if last < horizon {
				delete(m, id)
			}
		}
		if len(m) == 0 {
			delete(t.visitors, cell)
		}
	}
}
