// Package scenario is the adversarial soak engine: it streams a synthetic
// city through the real three-tier pipeline (anonymizer and database
// daemons over TCP, not stubs), drives it through scripted stress
// scenarios — flash crowds, mass profile flips, database outages, slow
// links, rolling restarts, query floods — and checks service-level
// objectives read back from the daemons' own live metrics endpoints.
//
// The population comes from mobility.Stream, so user count scales to
// millions without the harness holding per-user generator state; the only
// O(users) structure here is the acked bitmap (one bit per user) that
// cross-checks delivered updates against the database's resident count.
//
// A scenario fails loudly: every SLO violation is recorded with the
// metric evidence, and cmd/lbssoak turns any violation into a non-zero
// exit — the contract the CI short-soak job gates on.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/mobility"
)

// Config sizes and seeds one soak run. The same Config and scenario name
// always produce the same workload.
type Config struct {
	Users   int // registered mobile users (the streamed population)
	Objects int // stationary public objects
	K       int // baseline anonymity requirement
	Workers int // concurrent closed-loop drivers
	Batch   int // locations per BatchUpdate frame (1 = single updates)

	Seed  uint64
	Scale float64 // multiplier on phase durations (CI uses < 1)

	// Admission enables the overload-control machinery under test: the
	// daemons' in-flight admission budgets and the anonymizer's forward
	// backpressure. Disabling it is how the harness demonstrates that the
	// protections are load-bearing — the db_outage scenario fails without
	// them.
	Admission   bool
	MaxInflight int // per-daemon admission budget (with Admission)

	// ForwardQueue is the anonymizer's spill-queue capacity. Scenarios
	// may override it (db_outage shrinks it to force pressure).
	ForwardQueue int

	// Shards > 1 deploys the database tier as that many lbsd shards
	// behind a routing service; the anonymizer and the query drivers dial
	// the router. Shards <= 1 is the classic single-database stack.
	Shards int

	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 20000
	}
	if c.Objects <= 0 {
		c.Objects = 5000
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.ForwardQueue <= 0 {
		c.ForwardQueue = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// SLO is the objective set a scenario is gated on. Zero fields skip that
// gate; the implicit objectives — zero lost updates and zero post-seed
// k-anonymity violations — apply to every scenario and cannot be waived.
type SLO struct {
	// UpdateP99 bounds the p99 of the update path as the anonymizer
	// daemon's own proto_request_seconds histogram reports it.
	UpdateP99 time.Duration
	// QueryP99 bounds the daemon-side p99 of the cloak-query path.
	QueryP99 time.Duration
	// MaxErrorRate bounds hard client-visible errors (typed overload
	// rejections are counted separately — a shed is the daemon protecting
	// itself, not a failure) as a fraction of operations.
	MaxErrorRate float64
	// RecoverWithin bounds how long after an outage ends the pipeline may
	// take to report a drained spill queue and a closed breaker.
	RecoverWithin time.Duration
}

// Violation is one failed objective with its evidence.
type Violation struct {
	SLO    string
	Detail string
}

func (v Violation) String() string { return v.SLO + ": " + v.Detail }

// Result is the outcome of one scenario run.
type Result struct {
	Scenario string
	Wall     time.Duration

	Ops    uint64 // operations attempted after seeding
	Errors uint64 // hard failures (not typed sheds)
	Sheds  uint64 // typed MsgOverloaded rejections observed client-side

	UpdateP99 time.Duration // daemon-reported, whole run
	QueryP99  time.Duration
	Recovery  time.Duration // last measured recovery lag (0 = no outage)

	LostUpdates uint64 // spill-queue evictions: acked updates that died
	KViolations uint64 // post-seed cloaks that missed k

	Violations []Violation
}

// Passed reports whether every objective held.
func (r Result) Passed() bool { return len(r.Violations) == 0 }

// Summary renders the one-line verdict cmd/lbssoak prints per scenario.
func (r Result) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("%-16s %s  ops=%d errs=%d sheds=%d lost=%d kviol=%d p99(upd)=%v p99(qry)=%v recovery=%v wall=%v",
		r.Scenario, verdict, r.Ops, r.Errors, r.Sheds, r.LostUpdates, r.KViolations,
		r.UpdateP99.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond),
		r.Recovery.Round(time.Millisecond), r.Wall.Round(time.Millisecond))
}

// Scenario is one scripted stress story. Run drives the phases through
// the Env helpers; the engine owns seeding, teardown and SLO evaluation.
type Scenario struct {
	Name string
	Desc string
	SLO  SLO
	// Tune adjusts the run config before the stack boots (db_outage
	// shrinks the forward queue to force pressure).
	Tune func(cfg *Config)
	// Link, when set, is a fault plan installed on every
	// anonymizer→database forward connection — the slow-link dial.
	Link func(conn int) []faults.Rule
	Run  func(e *Env) error
}

// Phase is one closed-loop driving segment.
type Phase struct {
	Name string
	Dur  time.Duration // scaled by Config.Scale
	// Hot pulls part of the population toward an attractor — the flash
	// crowd dial (nil = baseline city).
	Hot *mobility.Hotspot
	// QueryPct is the share of operations that are private NN queries
	// (cloak at the anonymizer, refine against the database).
	QueryPct int
	// AllowErrors suppresses the per-phase error accounting toward
	// MaxErrorRate — for phases that deliberately break a tier (queries
	// against a killed database).
	AllowErrors bool
}
