// Package geo provides the planar geometry kernel used throughout the
// privacy-aware location-based database server: points, axis-aligned
// rectangles, and the distance computations (minimum and maximum distances
// between points and rectangles) that the cloaking algorithms and the
// privacy-aware query processors are built on.
//
// Coordinates are float64 in an arbitrary planar unit (the benchmarks use a
// [0,1)×[0,1) unit square unless stated otherwise). The package is purely
// computational and allocation-free on all hot paths.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key on hot paths.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Valid reports whether both coordinates are finite.
func (p Point) Valid() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}
