package privleak_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/privleak"
)

func TestFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis")
	}
	linttest.Run(t, "testdata/src/flow", privleak.Analyzer)
}

func TestClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis")
	}
	linttest.Run(t, "testdata/src/clean", privleak.Analyzer)
}
