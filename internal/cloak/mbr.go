package cloak

import (
	"math"

	"repro/internal/geo"
	"repro/internal/privacy"
)

// MBR is the data-dependent cloaker of Figure 3b (the approach of Gedik &
// Liu's CliqueCloak lineage cited by the paper): the cloaked region is the
// minimum bounding rectangle of the user and her k−1 nearest neighbors.
//
// The paper's critique, which the attack package quantifies: the MBR has at
// least one user on each edge, so for small k an adversary guessing "the
// user is on the boundary" does far better than random — information
// leakage without full disclosure.
type MBR struct {
	Pop Population
}

// Name implements Cloaker.
func (m *MBR) Name() string { return "mbr" }

// Cloak implements Cloaker.
func (m *MBR) Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result {
	neighbors := m.Pop.KNearest(loc, req.K)
	region := geo.PointRect(loc)
	for _, p := range neighbors {
		region = region.UnionPoint(p)
	}
	if region.Area() < req.MinArea {
		region = fitMinArea(region, m.Pop.World(), req.MinArea)
	}
	return finish(region, m.Pop.CountIn(region), req)
}

// expandDelta returns the per-side expansion d ≥ 0 such that
// (w+2d)(h+2d) = targetArea. For w·h ≥ targetArea it returns 0.
func expandDelta(w, h, targetArea float64) float64 {
	if w*h >= targetArea {
		return 0
	}
	// 4d² + 2(w+h)d + (wh − target) = 0, take the positive root.
	b := 2 * (w + h)
	c := w*h - targetArea
	disc := b*b - 16*c
	return (-b + math.Sqrt(disc)) / 8
}

// fitMinArea grows r to at least minArea while keeping it inside world and
// still containing the original rectangle. Growth is symmetric first; when
// a dimension hits the world's extent the other dimension compensates, and
// the final placement is the world-clamped centering on r's center (which
// provably contains r whenever the grown dimensions are ≥ r's).
func fitMinArea(r, world geo.Rect, minArea float64) geo.Rect {
	if r.Area() >= minArea {
		return r
	}
	d := expandDelta(r.Width(), r.Height(), minArea)
	w := math.Min(r.Width()+2*d, world.Width())
	h := math.Min(r.Height()+2*d, world.Height())
	if w*h < minArea {
		// One axis was capped by the world; stretch the other.
		h = math.Min(minArea/w, world.Height())
		if w*h < minArea {
			w = math.Min(minArea/h, world.Width())
		}
	}
	c := r.Center()
	minX := math.Min(math.Max(c.X-w/2, world.Min.X), world.Max.X-w)
	minY := math.Min(math.Max(c.Y-h/2, world.Min.Y), world.Max.Y-h)
	return geo.R(minX, minY, minX+w, minY+h)
}
