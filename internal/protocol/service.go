package protocol

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Handler processes one request frame and returns the response payload.
// The context carries the request's span context when the frame arrived
// inside a MsgTraced envelope (see WithTracing); handlers thread it into
// the engine so pipeline stages can record spans under the caller's trace.
type Handler func(ctx context.Context, typ byte, payload []byte) ([]byte, error)

// ErrOverloaded marks a request deliberately shed by admission control or
// backpressure — on the wire it travels as a MsgOverloaded response
// rather than msgErr. Handlers return errors wrapping it to shed typed;
// clients surface it (wrapped) from Call so callers can tell "peer is
// protecting itself, back off" from "request failed".
var ErrOverloaded = errors.New("protocol: peer overloaded")

// svcMetrics holds the protocol tier's registered obs series. Per-message-
// type series are looked up lazily from the registry (get-or-create), so
// only types actually seen appear on /metrics.
type svcMetrics struct {
	reg           *obs.Registry
	active        *obs.Gauge
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	dropped       *obs.Counter
	errs          *obs.Counter
	acceptRetries *obs.Counter
	rejected      *obs.Counter
	idleDrops     *obs.Counter
	frameBytes    *obs.Histogram
}

func newSvcMetrics(reg *obs.Registry) *svcMetrics {
	return &svcMetrics{
		reg:           reg,
		active:        reg.Gauge("proto_active_connections", "Live TCP connections."),
		bytesIn:       reg.Counter("proto_bytes_read_total", "Frame bytes read, headers included."),
		bytesOut:      reg.Counter("proto_bytes_written_total", "Frame bytes written, headers included."),
		dropped:       reg.Counter("proto_dropped_frames_total", "Connections dropped on malformed or unreadable frames."),
		errs:          reg.Counter("proto_handler_errors_total", "Requests answered with an error frame."),
		acceptRetries: reg.Counter("proto_accept_retries_total", "Transient Accept errors survived with backoff."),
		rejected:      reg.Counter("proto_conns_rejected_total", "Connections closed at accept because the max-connection cap was reached."),
		idleDrops:     reg.Counter("proto_idle_drops_total", "Connections dropped by the per-connection read/idle deadline."),
		// 16 B .. 16 MiB in ×4 steps — the frame cap is maxFrame.
		frameBytes: reg.Histogram("proto_frame_bytes",
			"Size of request frames read, headers included.", obs.ExpBuckets(16, 4, 11)),
	}
}

// shed records one admission-control rejection, labelled by the message
// type that was refused, so dashboards can attribute every shed.
func (m *svcMetrics) shed(typ byte) {
	m.reg.Counter("proto_overload_rejections_total",
		"Requests rejected with MsgOverloaded by admission control, by message type.",
		obs.L("type", MessageName(typ))).Inc()
}

// observe records one served request. A nonzero traceID becomes the
// latency bucket's exemplar, linking the histogram to a captured trace.
func (m *svcMetrics) observe(typ byte, d time.Duration, traceID uint64) {
	name := MessageName(typ)
	m.reg.Counter("proto_requests_total", "Requests served by message type.",
		obs.L("type", name)).Inc()
	m.reg.Histogram("proto_request_seconds", "Request service latency by message type.",
		obs.DefaultLatencyBuckets, obs.L("type", name)).ObserveExemplar(d.Seconds(), traceID)
}

// Service is a generic framed request/response TCP server shared by the
// anonymizer and database services.
type Service struct {
	ln      net.Listener
	handler Handler
	logf    func(format string, args ...interface{})
	met     *svcMetrics   // nil when the service is not instrumented
	tracer  *trace.Tracer // nil when the service is not traced

	readTimeout  time.Duration // per-frame read/idle deadline (0 = none)
	maxConns     int           // connection cap (0 = unlimited)
	drainTimeout time.Duration // grace for in-flight frames on Close

	admMax   int          // in-flight request cap (0 = no admission control)
	admQuery int          // stricter cap for the query class
	inflight atomic.Int64 // requests currently inside the handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Option configures a Service.
type Option func(*Service)

// WithMetrics instruments the service: per-message-type request counters
// and latency histograms, bytes in/out, active connections and dropped
// frames are registered as proto_* series in reg, and the service answers
// MsgMetrics requests with a snapshot of the whole registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Service) {
		if reg != nil {
			s.met = newSvcMetrics(reg)
		}
	}
}

// WithTracing makes the service trace-aware: it answers the MsgTraceNeg
// negotiation probe, serves MsgTraces with a snapshot of the span ring,
// unwraps MsgTraced envelopes (dispatching the inner frame with the span
// context installed in the request context), and records a proto_serve
// span around every traced dispatch. A nil tracer leaves the service
// un-traced, indistinguishable from an old binary.
func WithTracing(t *trace.Tracer) Option {
	return func(s *Service) { s.tracer = t }
}

// WithReadTimeout drops a connection that does not deliver its next frame
// within d — the slowloris defense and the idle-connection reaper in one
// knob. Clients reconnect transparently, so reaping idle connections is
// safe.
func WithReadTimeout(d time.Duration) Option {
	return func(s *Service) { s.readTimeout = d }
}

// WithMaxConns caps concurrent connections; connections over the cap are
// accepted and immediately closed, which peers see as a clean EOF and
// their retry/backoff path absorbs.
func WithMaxConns(n int) Option {
	return func(s *Service) { s.maxConns = n }
}

// WithAdmission bounds in-flight work: at most maxInFlight requests may
// be inside the handler at once, and requests over the budget are
// answered immediately with MsgOverloaded instead of queueing without
// bound behind a saturated engine. The budget is split by priority —
// queries are capped at half the budget so location updates (the traffic
// that keeps privacy state fresh) are never starved by a query flood,
// and the observability types (metrics, traces, stats) are always
// admitted so SLO checks can still see an overloaded daemon. Zero or
// negative disables admission control.
func WithAdmission(maxInFlight int) Option {
	return func(s *Service) {
		if maxInFlight > 0 {
			s.admMax = maxInFlight
			s.admQuery = maxInFlight / 2
			if s.admQuery < 1 {
				s.admQuery = 1
			}
		}
	}
}

// Admission priority classes, sheddability-ordered: queries go first,
// updates only at the hard cap, control traffic never.
const (
	admitAlways = iota // observability + negotiation: must survive overload
	admitUpdate        // writes that keep privacy state fresh
	admitQuery         // reads: shed first, callers can retry
)

// admissionClass buckets a message type for admission control.
func admissionClass(typ byte) int {
	switch typ {
	case MsgMetrics, MsgTraces, MsgTraceNeg, MsgAnonStats, MsgStats, MsgShardMap:
		return admitAlways
	case MsgCloakQuery, MsgPrivateRange, MsgPrivateNN, MsgPublicCount,
		MsgPublicNN, MsgContCount, MsgBatchQuery,
		MsgNNParts, MsgCountProbs, MsgShardBatch:
		return admitQuery
	default:
		return admitUpdate
	}
}

// WithDrainTimeout makes Close graceful: the listener stops immediately,
// but live connections get up to d to finish in-flight frames before
// being force-closed. Zero (the default) preserves the historical
// immediate force-close.
func WithDrainTimeout(d time.Duration) Option {
	return func(s *Service) { s.drainTimeout = d }
}

// Serve starts accepting connections on addr ("host:port"; ":0" picks a
// free port) and dispatches frames to the handler. It returns immediately;
// use Addr for the bound address and Close to stop.
func Serve(addr string, handler Handler, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, handler, logf, opts...)
}

// ServeListener is Serve over an existing listener — the seam tests use to
// inject faulty listeners.
func ServeListener(ln net.Listener, handler Handler, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	if logf == nil {
		logf = log.Printf
	}
	s := &Service{ln: ln, handler: handler, logf: logf, conns: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr().String() }

// Accept-retry backoff bounds: transient errors (EMFILE, ECONNABORTED,
// firewall hiccups) are retried with exponential backoff instead of
// killing the listener; only a closed listener ends the loop.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			if s.met != nil {
				s.met.acceptRetries.Inc()
			}
			s.logf("protocol: transient accept error (retrying in %v): %v", backoff, err)
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			conn.Close()
			if s.met != nil {
				s.met.rejected.Inc()
			}
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Service) serveConn(conn net.Conn) {
	defer s.wg.Done()
	if s.met != nil {
		s.met.active.Inc()
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.met != nil {
			s.met.active.Dec()
		}
	}()
	// The read buffer is reused across frames (ReadFrameBuf): the request
	// payload is handled fully — dispatch and the response write — before
	// the next read, and no handler retains a payload view past its
	// return (Decoder numeric reads and Str copy out), so the reuse is
	// invisible to handlers. The no-alias stress test and FuzzReadFrame
	// pin this contract.
	var rbuf []byte
	for {
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		typ, payload, nbuf, err := ReadFrameBuf(conn, rbuf)
		rbuf = nbuf
		if err != nil {
			// EOF or broken peer: drop the connection. A clean close reads
			// io.EOF at a frame boundary; anything else is a dropped frame,
			// with deadline expiries counted separately as idle drops.
			if s.met != nil && !errors.Is(err, io.EOF) {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					s.met.idleDrops.Inc()
				} else {
					s.met.dropped.Inc()
				}
			}
			return
		}
		var t0 time.Time
		if s.met != nil {
			s.met.bytesIn.Add(uint64(5 + len(payload)))
			s.met.frameBytes.Observe(float64(5 + len(payload)))
			t0 = time.Now()
		}
		resp, obsTyp, traceID, herr := s.dispatch(typ, payload)
		if s.met != nil {
			s.met.observe(obsTyp, time.Since(t0), traceID)
		}
		if herr != nil {
			// A deliberate shed travels as MsgOverloaded, not msgErr, and is
			// counted as a rejection rather than a handler failure.
			respType := msgErr
			if errors.Is(herr, ErrOverloaded) {
				respType = MsgOverloaded
				if s.met != nil {
					s.met.shed(obsTyp)
				}
			} else if s.met != nil {
				s.met.errs.Inc()
			}
			var e Encoder
			e.Str(herr.Error())
			if s.met != nil {
				s.met.bytesOut.Add(uint64(5 + len(e.Bytes())))
			}
			if WriteFrame(conn, respType, e.Bytes()) != nil {
				return
			}
			continue
		}
		if s.met != nil {
			s.met.bytesOut.Add(uint64(5 + len(resp)))
		}
		if WriteFrame(conn, msgOK, resp) != nil {
			return
		}
	}
}

// dispatch answers one request frame: the Service-layer message types
// (metrics snapshot, trace negotiation, trace ring pull) directly, and
// everything else through the handler. A MsgTraced envelope is unwrapped
// here — the inner frame is dispatched with the caller's span context in
// the request context and a proto_serve span around the exchange — and
// obsTyp names the frame the per-type metrics should attribute the work
// to (the inner type for envelopes).
//
//lint:wire-handler
func (s *Service) dispatch(typ byte, payload []byte) (resp []byte, obsTyp byte, traceID uint64, err error) {
	ctx := context.Background()
	obsTyp = typ
	if s.tracer != nil {
		switch typ {
		case MsgTraceNeg:
			return []byte{traceNegVersion}, obsTyp, 0, nil
		case MsgTraces:
			return encodeSpans(s.tracer.Snapshot()), obsTyp, 0, nil
		case MsgTraced:
			sc, innerTyp, inner, derr := decodeTraced(payload)
			if derr != nil {
				return nil, obsTyp, 0, derr
			}
			obsTyp, payload = innerTyp, inner
			if sc.Sampled() {
				traceID = sc.TraceID
				sp := s.tracer.StartSpan(sc, "proto_serve")
				sp.SetAttrs(trace.Str("type", MessageName(innerTyp)))
				defer sp.End()
				ctx = trace.NewContext(ctx, sp.Context())
			}
		}
	}
	if obsTyp == MsgMetrics && s.met != nil {
		// The metrics snapshot is served by the Service layer itself, so
		// any instrumented service answers it without the per-service
		// handlers knowing about it.
		return encodeMetrics(s.met.reg.Export()), obsTyp, traceID, nil
	}
	if s.admMax > 0 {
		if cls := admissionClass(obsTyp); cls != admitAlways {
			limit := s.admMax
			if cls == admitQuery {
				limit = s.admQuery
			}
			if n := s.inflight.Add(1); int(n) > limit {
				s.inflight.Add(-1)
				if s.tracer != nil {
					if sc, ok := trace.FromContext(ctx); ok {
						sp := s.tracer.StartSpan(sc, "proto_shed")
						sp.SetAttrs(trace.Str("type", MessageName(obsTyp)))
						sp.End()
					}
				}
				return nil, obsTyp, traceID, fmt.Errorf(
					"%w: %s rejected at %d requests in flight", ErrOverloaded, MessageName(obsTyp), limit)
			}
			defer s.inflight.Add(-1)
		}
	}
	resp, err = s.handler(ctx, obsTyp, payload)
	return resp, obsTyp, traceID, err
}

// Close stops the service. The listener closes immediately; with a drain
// timeout configured, live connections get that long to finish in-flight
// frames (their next read fails at the drain deadline) before any
// stragglers are force-closed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	drain := s.drainTimeout
	if drain > 0 {
		deadline := time.Now().Add(drain)
		for c := range s.conns {
			c.SetReadDeadline(deadline)
		}
		s.mu.Unlock()
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
			return err
		case <-time.After(drain + 50*time.Millisecond):
		}
		s.mu.Lock()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
