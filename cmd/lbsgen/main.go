// Command lbsgen emits reproducible synthetic workload traces as CSV:
// either a static population of public objects or a mobile-user trace from
// the random-waypoint (or road-network) simulator. The experiments in
// EXPERIMENTS.md and external tooling can both consume its output.
//
// Usage:
//
//	lbsgen -kind objects -n 10000 -dist uniform -seed 1 > pois.csv
//	lbsgen -kind trace -n 1000 -ticks 100 -model waypoint > trace.csv
//	lbsgen -kind trace -n 1000000 -ticks 10 -model stream > city.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/geo"
	"repro/internal/mobility"
)

func main() {
	kind := flag.String("kind", "objects", "objects | trace")
	n := flag.Int("n", 1000, "number of objects / users")
	dist := flag.String("dist", "uniform", "uniform | gaussian | zipf")
	clusters := flag.Int("clusters", 10, "cluster count for gaussian/zipf")
	seed := flag.Uint64("seed", 1, "RNG seed")
	worldSize := flag.Float64("world", 1.0, "world is the square [0,size]²")
	ticks := flag.Int("ticks", 100, "trace length in ticks")
	model := flag.String("model", "waypoint", "trace model: waypoint | road | stream")
	roadGrid := flag.Int("road-grid", 16, "road network intersections per side")
	flag.Parse()

	world := geo.R(0, 0, *worldSize, *worldSize)
	var d mobility.Distribution
	switch *dist {
	case "uniform":
		d = mobility.Uniform
	case "gaussian":
		d = mobility.Gaussian
	case "zipf":
		d = mobility.ZipfClusters
	default:
		log.Fatalf("lbsgen: unknown distribution %q", *dist)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "objects":
		pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: *n, World: world, Dist: d, NumClusters: *clusters, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("lbsgen: %v", err)
		}
		fmt.Fprintln(w, "id,x,y")
		for i, p := range pts {
			fmt.Fprintf(w, "%d,%.9f,%.9f\n", i+1, p.X, p.Y)
		}

	case "trace":
		fmt.Fprintln(w, "tick,id,x,y")
		emit := func(tick int, users []mobility.User) {
			for _, u := range users {
				fmt.Fprintf(w, "%d,%d,%.9f,%.9f\n", tick, u.ID, u.Loc.X, u.Loc.Y)
			}
		}
		switch *model {
		case "waypoint":
			sim, err := mobility.NewWaypointSim(mobility.WaypointConfig{
				Population: mobility.PopulationSpec{
					N: *n, World: world, Dist: d, NumClusters: *clusters, Seed: *seed,
				},
				MinSpeed: 0.001 * *worldSize,
				MaxSpeed: 0.01 * *worldSize,
				MaxPause: 5,
			})
			if err != nil {
				log.Fatalf("lbsgen: %v", err)
			}
			emit(0, sim.Users())
			for tick := 1; tick <= *ticks; tick++ {
				sim.Tick()
				emit(tick, sim.Users())
			}
		case "road":
			net, err := mobility.NewRoadNetwork(world, *roadGrid, *roadGrid)
			if err != nil {
				log.Fatalf("lbsgen: %v", err)
			}
			sim, err := mobility.NewRoadSim(mobility.RoadConfig{
				Net: net, N: *n, MinSpeed: 0.2, MaxSpeed: 0.8, Seed: *seed,
			})
			if err != nil {
				log.Fatalf("lbsgen: %v", err)
			}
			emit(0, sim.Users())
			for tick := 1; tick <= *ticks; tick++ {
				sim.Tick()
				emit(tick, sim.Users())
			}
		case "stream":
			// The streaming model holds O(clusters) state, so -n here can be
			// millions without the generator itself growing; only the CSV is
			// O(n·ticks).
			g, err := mobility.NewStream(mobility.StreamSpec{
				World: world, Seed: *seed, NumClusters: *clusters,
			})
			if err != nil {
				log.Fatalf("lbsgen: %v", err)
			}
			for tick := 0; tick <= *ticks; tick++ {
				for id := uint64(1); id <= uint64(*n); id++ {
					p := g.Pos(id, uint64(tick), nil)
					fmt.Fprintf(w, "%d,%d,%.9f,%.9f\n", tick, id, p.X, p.Y)
				}
			}
		default:
			log.Fatalf("lbsgen: unknown model %q", *model)
		}

	default:
		log.Fatalf("lbsgen: unknown kind %q", *kind)
	}
}
