package obs_test

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE per
// family, cumulative le buckets with an implicit +Inf, _sum and _count,
// families sorted by name.
func TestWritePrometheusGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test_requests_total", "Requests served.", obs.L("type", "update")).Add(3)
	reg.Gauge("test_active", "Active connections.").Set(1.5)
	h := reg.Histogram("test_latency_seconds", "Request latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2.25)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_active Active connections.
# TYPE test_active gauge
test_active 1.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.5"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 3.25
test_latency_seconds_count 3
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{type="update"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("esc_total", "line\nbreak \\ slash", obs.L("q", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line\nbreak \\ slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{q="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
