// Ecoupon: the public nearest-neighbor query over private data of
// Figure 6b. A gas station wants to send a personalized e-coupon to its
// nearest mobile user, but every user is cloaked. The example shows the
// candidate set after min–max pruning, the probability assignment, all
// three answer formats, and — since this is a simulation that knows the
// ground truth — how often the most-likely answer is actually right.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
)

func main() {
	world := geo.R(0, 0, 1, 1)
	sys, err := core.NewSystem(core.Config{World: world})
	if err != nil {
		log.Fatal(err)
	}

	// 3000 cloaked customers around town.
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 3000, World: world, Dist: mobility.Gaussian, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 40})
	for i, p := range pts {
		id := uint64(i + 1)
		if err := sys.RegisterUser(id, prof); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.UpdateLocation(id, p); err != nil {
			log.Fatal(err)
		}
	}

	station := geo.Pt(0.47, 0.53)
	fmt.Printf("gas station at %v asks: who is my nearest customer?\n\n", station)

	res, err := sys.NearestUser(station)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min–max pruning eliminated %d of %d users\n", res.PrunedCount,
		res.PrunedCount+len(res.Candidates))

	// Format 1: the candidate set.
	fmt.Printf("\nformat 1 — potential nearest users (%d candidates, top 8):\n", len(res.Candidates))
	for i, c := range res.Candidates {
		if i >= 8 {
			break
		}
		region := res.CandidateRegions[c.ID]
		fmt.Printf("  user %-5d P=%.3f  region %v\n", c.ID, c.Prob, region)
	}

	// Format 2: the single most likely.
	fmt.Printf("\nformat 2 — most likely nearest: user %d (P=%.3f) → send the coupon there\n",
		res.Best.ID, res.Best.Prob)

	// Format 3: the probability density function is the Candidates slice
	// itself — (user, probability) pairs.
	var mass float64
	for _, c := range res.Candidates {
		mass += c.Prob
	}
	fmt.Printf("format 3 — PDF over candidates, total mass %.3f\n", mass)

	// Ground truth (the simulator knows it; the server never does).
	bestD := -1.0
	var trueNN uint64
	for i, p := range pts {
		d := station.Dist2(p)
		if bestD < 0 || d < bestD {
			bestD, trueNN = d, uint64(i+1)
		}
	}
	fmt.Printf("\nground truth: the actually-nearest user is %d", trueNN)
	if trueNN == res.Best.ID {
		fmt.Println(" — the coupon reached the right person.")
	} else {
		var p float64
		for _, c := range res.Candidates {
			if c.ID == trueNN {
				p = c.Prob
				break
			}
		}
		fmt.Printf(", who was candidate P=%.3f — the cloaking kept her identity\n", p)
		fmt.Println("uncertain, which is exactly the privacy the profile bought.")
	}

	// Repeat from many stations to estimate coupon accuracy.
	fmt.Println("\ncoupon accuracy over 40 stations:")
	hits := 0
	for i := 0; i < 40; i++ {
		q := geo.Pt(float64(i%8)/8+0.05, float64(i/8)/5+0.07)
		r, err := sys.NearestUser(q)
		if err != nil {
			log.Fatal(err)
		}
		bd := -1.0
		var tn uint64
		for j, p := range pts {
			d := q.Dist2(p)
			if bd < 0 || d < bd {
				bd, tn = d, uint64(j+1)
			}
		}
		if r.Best.ID == tn {
			hits++
		}
	}
	fmt.Printf("most-likely answer was the true nearest user %d/40 times\n", hits)
	fmt.Println("(raise k in the profiles and this drops; lower it and it rises)")
}
