package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Label is one name=value dimension of a metric series (the cloaking
// algorithm, the wire message type, the query class).
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// seriesKey uniquely identifies a series: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// Registry holds named metrics. Registration takes a short write lock;
// the returned Counter/Gauge/Histogram handles are lock-free, so hot paths
// register once and hold the handle. Registration is get-or-create: asking
// for an existing (name, labels) series returns the same handle, which is
// what lazily instrumented per-label call sites need. All methods are safe
// for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*metric

	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*metric)}
}

// lookup returns an existing series, enforcing kind agreement.
func (r *Registry) lookup(key, name string, kind Kind) *metric {
	m, ok := r.series[key]
	if !ok {
		return nil
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
	}
	return m
}

// sortLabels returns labels in deterministic key order.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m := r.lookup(key, name, KindCounter)
	r.mu.RUnlock()
	if m != nil {
		return m.counter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, name, KindCounter); m != nil {
		return m.counter
	}
	m = &metric{name: name, help: help, labels: labels, kind: KindCounter, counter: &Counter{}}
	r.series[key] = m
	return m.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m := r.lookup(key, name, KindGauge)
	r.mu.RUnlock()
	if m != nil {
		return m.gauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, name, KindGauge); m != nil {
		return m.gauge
	}
	m = &metric{name: name, help: help, labels: labels, kind: KindGauge, gauge: &Gauge{}}
	r.series[key] = m
	return m.gauge
}

// Histogram returns the histogram registered under (name, labels), creating
// it with the given bucket bounds on first use (nil bounds =
// DefaultLatencyBuckets). Later calls may pass nil bounds to address the
// existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m := r.lookup(key, name, KindHistogram)
	r.mu.RUnlock()
	if m != nil {
		return m.hist
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, name, KindHistogram); m != nil {
		return m.hist
	}
	m = &metric{name: name, help: help, labels: labels, kind: KindHistogram, hist: newHistogram(bounds)}
	r.series[key] = m
	return m.hist
}

// MetricSnapshot is one frozen series — the unit the wire protocol carries
// and the exposition format prints.
type MetricSnapshot struct {
	Name   string
	Help   string
	Labels []Label
	Kind   Kind
	// Value holds the counter count (as a float) or the gauge value.
	Value float64
	// Hist is set for KindHistogram.
	Hist HistogramSnapshot
}

// AddExportHook registers fn to run at the start of every Export — the
// seam pull-model collectors (the runtime-metrics bridge) use to refresh
// their gauges only when someone is actually looking. Hooks run outside
// the registry lock and may register or update series.
func (r *Registry) AddExportHook(fn func()) {
	r.hookMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.hookMu.Unlock()
}

// Export returns a snapshot of every registered series, sorted by name then
// label signature so output and wire encodings are deterministic.
func (r *Registry) Export() []MetricSnapshot {
	r.hookMu.Lock()
	hooks := r.hooks
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.RLock()
	out := make([]MetricSnapshot, 0, len(r.series))
	for key, m := range r.series {
		s := MetricSnapshot{Name: m.name, Help: m.help, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Value())
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			s.Hist = m.hist.Snapshot()
		}
		_ = key
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return seriesKey("", out[i].Labels) < seriesKey("", out[j].Labels)
	})
	return out
}

// Find returns the exported snapshot of one series, or false.
func (r *Registry) Find(name string, labels ...Label) (MetricSnapshot, bool) {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		return MetricSnapshot{}, false
	}
	s := MetricSnapshot{Name: m.name, Help: m.help, Labels: m.labels, Kind: m.kind}
	switch m.kind {
	case KindCounter:
		s.Value = float64(m.counter.Value())
	case KindGauge:
		s.Value = m.gauge.Value()
	case KindHistogram:
		s.Hist = m.hist.Snapshot()
	}
	return s, true
}
