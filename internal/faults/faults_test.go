package faults

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns two ends of a real TCP connection on loopback.
func pipe(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, err = ln.Accept()
		close(done)
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// frame builds one [u32 length][payload] frame.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func TestTrackerCountsFrames(t *testing.T) {
	var tr tracker
	if got := tr.current(); got != 1 {
		t.Fatalf("fresh tracker current = %d, want 1", got)
	}
	f1 := frame([]byte("hello"))
	f2 := frame([]byte("x"))
	// Feed byte-by-byte across both frames; the boundary must land exactly.
	stream := append(append([]byte(nil), f1...), f2...)
	for i, b := range stream {
		want := 1
		if i >= len(f1) {
			want = 2
		}
		if got := tr.current(); got != want {
			t.Fatalf("byte %d: current = %d, want %d", i, got, want)
		}
		tr.feed([]byte{b})
	}
	if got := tr.current(); got != 3 {
		t.Fatalf("after two frames current = %d, want 3", got)
	}
}

func TestDropOnNthWrite(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 2, Action: Drop})

	if _, err := fc.Write(frame([]byte("one"))); err != nil {
		t.Fatalf("frame 1 write: %v", err)
	}
	if _, err := fc.Write(frame([]byte("two"))); !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 2 write err = %v, want ErrInjected", err)
	}
	// Peer reads frame 1 intact, then EOF-ish failure.
	buf := make([]byte, 16)
	if _, err := io.ReadFull(server, buf[:7]); err != nil {
		t.Fatalf("peer read of surviving frame: %v", err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := server.Read(buf); err == nil {
		t.Fatal("peer still readable after drop")
	}
}

func TestTruncateLeavesTornFrame(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Truncate, KeepBytes: 3})

	n, err := fc.Write(frame([]byte("payload")))
	if n != 3 {
		t.Fatalf("truncated write wrote %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write err = %v, want ErrInjected", err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	got, _ := io.ReadFull(server, buf)
	if got != 3 {
		t.Fatalf("peer received %d bytes of torn frame, want 3", got)
	}
}

func TestDelayIsTransparent(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Delay, Delay: 50 * time.Millisecond})

	t0 := time.Now()
	if _, err := fc.Write(frame([]byte("slow"))); err != nil {
		t.Fatalf("delayed write: %v", err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥ 50ms", d)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("peer read after delay: %v", err)
	}
}

func TestReadDrop(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Read, Nth: 2, Action: Reset})

	go func() {
		server.Write(frame([]byte("first")))
		server.Write(frame([]byte("second")))
	}()
	buf := make([]byte, 9)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatalf("frame 1 read: %v", err)
	}
	fc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(fc, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 2 read err = %v, want ErrInjected", err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 0.5, 4)
	b := Schedule(42, 0.5, 4)
	faulted := 0
	for conn := 1; conn <= 64; conn++ {
		ra, rb := a(conn), b(conn)
		if len(ra) != len(rb) {
			t.Fatalf("conn %d: plans diverge", conn)
		}
		if len(ra) == 1 {
			faulted++
			if ra[0] != rb[0] {
				t.Fatalf("conn %d: rules diverge: %+v vs %+v", conn, ra[0], rb[0])
			}
			if ra[0].Nth < 1 || ra[0].Nth > 4 {
				t.Fatalf("conn %d: frame index %d out of range", conn, ra[0].Nth)
			}
		}
	}
	if faulted == 0 || faulted == 64 {
		t.Fatalf("degenerate schedule: %d/64 connections faulted", faulted)
	}
}

func TestFlakyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlakyListener(ln, 3)
	defer fl.Close()
	for i := 0; i < 3; i++ {
		if _, err := fl.Accept(); !errors.Is(err, ErrTransient) {
			t.Fatalf("accept %d err = %v, want ErrTransient", i, err)
		}
	}
	go net.Dial("tcp", ln.Addr().String())
	conn, err := fl.Accept()
	if err != nil {
		t.Fatalf("accept after transient failures: %v", err)
	}
	conn.Close()
	if fl.Accepts() != 4 {
		t.Fatalf("accepts = %d, want 4", fl.Accepts())
	}
}

// A pause rule must stall the peer mid-frame: the first byte arrives
// promptly, the rest only after the stall — and the connection survives.
func TestPauseStallsMidFrame(t *testing.T) {
	client, server := pipe(t)
	const stall = 150 * time.Millisecond
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Pause, Delay: stall})

	payload := frame([]byte("hello world"))
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write(payload)
		done <- err
	}()

	// The first byte must arrive well before the stall elapses.
	one := make([]byte, 1)
	server.SetReadDeadline(time.Now().Add(stall / 2))
	if _, err := io.ReadFull(server, one); err != nil {
		t.Fatalf("first byte did not arrive before the stall: %v", err)
	}

	// The rest arrives only after the stall.
	rest := make([]byte, len(payload)-1)
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(server, rest); err != nil {
		t.Fatalf("rest of frame: %v", err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("frame completed in %v, want >= %v", elapsed, stall)
	}
	if err := <-done; err != nil {
		t.Fatalf("paused write failed: %v", err)
	}

	// The rule consumed itself: a second frame is instant and intact.
	if _, err := fc.Write(frame([]byte("again"))); err != nil {
		t.Fatalf("second write: %v", err)
	}
	buf := make([]byte, 4+5)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("second frame: %v", err)
	}
}

// A bandwidth rule must cap sustained throughput and stay in force for
// the connection's life instead of consuming itself.
func TestBandwidthCapsThroughput(t *testing.T) {
	client, server := pipe(t)
	const rate = 4096 // bytes/sec
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Bandwidth, Rate: rate})

	// Drain the server side so writes never block on the socket buffer.
	go io.Copy(io.Discard, server)

	total := 0
	start := time.Now()
	for i := 0; i < 4; i++ {
		p := frame(make([]byte, 508)) // 512 bytes on the wire per frame
		n, err := fc.Write(p)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		total += n
	}
	elapsed := time.Since(start)
	// 2048 bytes at 4096 B/s is at least ~500ms of pacing; allow slack
	// for coarse sleeps but catch an uncapped link (which finishes in µs).
	min := time.Duration(float64(total)/float64(rate)*float64(time.Second)) / 2
	if elapsed < min {
		t.Fatalf("%d bytes crossed in %v, want >= %v at %d B/s", total, elapsed, min, rate)
	}
}

// A bandwidth rule with Nth > 1 must leave earlier frames uncapped.
func TestBandwidthStartsAtNthFrame(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 2, Action: Bandwidth, Rate: 64})
	go io.Copy(io.Discard, server)

	start := time.Now()
	if _, err := fc.Write(frame(make([]byte, 60))); err != nil { // frame 1: free
		t.Fatal(err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatalf("frame 1 was throttled: %v", time.Since(start))
	}
	start = time.Now()
	if _, err := fc.Write(frame(make([]byte, 60))); err != nil { // frame 2: 64 B/s
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("frame 2 crossed in %v, want >= 400ms at 64 B/s", elapsed)
	}
}
