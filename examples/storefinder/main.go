// Storefinder: the paper's motivating "find the nearest restaurant"
// scenario. A user walks through town asking for nearby restaurants and
// gas stations at increasing privacy levels, and the example prints how the
// answer quality (candidate counts, transfer bytes) degrades as k grows —
// the personal privacy/QoS trade-off of Section 1.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/server"
)

func main() {
	world := geo.R(0, 0, 1, 1)
	sys, err := core.NewSystem(core.Config{World: world})
	if err != nil {
		log.Fatal(err)
	}

	// A realistic downtown: restaurants cluster, gas stations spread out.
	objs, err := mobility.GeneratePublicObjects(world, 42,
		mobility.ObjectClass{Name: "restaurant", N: 800, Dist: mobility.Gaussian},
		mobility.ObjectClass{Name: "gas", N: 200, Dist: mobility.Uniform},
	)
	if err != nil {
		log.Fatal(err)
	}
	pois := make([]server.PublicObject, len(objs))
	for i, o := range objs {
		pois[i] = server.PublicObject{ID: o.ID, Class: o.Class, Loc: o.Loc}
	}
	if err := sys.LoadPublicObjects(pois); err != nil {
		log.Fatal(err)
	}

	// 5000 other subscribers form the anonymity sets.
	crowd, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 5000, World: world, Dist: mobility.Gaussian, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	bg := privacy.Constant(privacy.Requirement{K: 10})
	for i, p := range crowd {
		id := uint64(i + 100)
		if err := sys.RegisterUser(id, bg); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.UpdateLocation(id, p); err != nil {
			log.Fatal(err)
		}
	}

	// Our user tries the service at four privacy levels.
	route := []geo.Point{{X: 0.31, Y: 0.44}, {X: 0.52, Y: 0.49}, {X: 0.68, Y: 0.61}}
	fmt.Println("privacy level sweep — nearest restaurant along a walk:")
	fmt.Printf("%-6s %-12s %-14s %-12s %-10s\n", "k", "stop", "nearest", "candidates", "bytes")
	for _, k := range []int{1, 10, 100, 500} {
		uid := uint64(1000000 + k) // a fresh identity per privacy level
		if err := sys.RegisterUser(uid, privacy.Constant(privacy.Requirement{K: k})); err != nil {
			log.Fatal(err)
		}
		for si, stop := range route {
			if _, err := sys.UpdateLocation(uid, stop); err != nil {
				log.Fatal(err)
			}
			best, stats, err := sys.FindNearest(uid, stop, "restaurant")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d stop %-7d #%-5d %.4f   %-12d %-10d\n",
				k, si+1, best.ID, stop.Dist(best.Loc), stats.Candidates, stats.Bytes)
		}
	}

	// Range query flavor: everything within walking distance.
	fmt.Println("\ngas stations within 0.08 of the second stop (k=100):")
	uid := uint64(1000100)
	within, stats, err := sys.FindWithin(uid, route[1], 0.08, "gas")
	if err != nil {
		log.Fatal(err)
	}
	for i, o := range within {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(within)-5)
			break
		}
		fmt.Printf("  #%d at %v (%.4f away)\n", o.ID, o.Loc, route[1].Dist(o.Loc))
	}
	fmt.Printf("answer: %d stations from %d candidates (%d bytes shipped)\n",
		len(within), stats.Candidates, stats.Bytes)
	fmt.Println("\nnote how k=1 gets pinpoint answers with minimal transfer while")
	fmt.Println("k=500 pays in candidates — the trade-off each profile entry tunes.")
}
