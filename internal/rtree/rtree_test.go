package rtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func testPoints(t testing.TB, n int, seed uint64) []geo.Point {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func bruteRange(items []Item, r geo.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	for _, it := range items {
		if r.Contains(it.Loc) {
			out[it.ID] = true
		}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has bounds")
	}
	if got := tr.Search(world, nil); len(got) != 0 {
		t.Error("empty tree search returned items")
	}
	if got := tr.Count(world); got != 0 {
		t.Error("empty tree count != 0")
	}
	if _, ok := tr.NearestOne(geo.Pt(0.5, 0.5)); ok {
		t.Error("empty tree returned a nearest item")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	pts := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}, {X: 0.5, Y: 0.5}}
	for i, p := range pts {
		tr.Insert(Item{ID: uint64(i + 1), Loc: p})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Search(geo.R(0, 0, 0.6, 0.6), nil)
	ids := map[uint64]bool{}
	for _, it := range got {
		ids[it.ID] = true
	}
	if !ids[1] || !ids[3] || ids[2] {
		t.Errorf("search got %v", ids)
	}
}

func TestInsertManyMatchesBrute(t *testing.T) {
	pts := testPoints(t, 2000, 1)
	tr := New()
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: uint64(i + 1), Loc: p}
		tr.Insert(items[i])
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	for q := 0; q < 50; q++ {
		r := geo.R(src.Float64(), src.Float64(), src.Float64(), src.Float64())
		want := bruteRange(items, r)
		got := tr.Search(r, nil)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d items, want %d", r, len(got), len(want))
		}
		for _, it := range got {
			if !want[it.ID] {
				t.Fatalf("query %v returned wrong item %d", r, it.ID)
			}
		}
		if c := tr.Count(r); c != len(want) {
			t.Fatalf("Count = %d, want %d", c, len(want))
		}
	}
}

func TestBulkLoadMatchesBrute(t *testing.T) {
	pts := testPoints(t, 5000, 2)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: uint64(i + 1), Loc: p}
	}
	// BulkLoad reorders its input; keep a copy for brute-force checking.
	ref := append([]Item(nil), items...)
	tr := BulkLoad(items)
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for q := 0; q < 50; q++ {
		r := geo.R(src.Float64(), src.Float64(), src.Float64(), src.Float64())
		want := bruteRange(ref, r)
		got := tr.Search(r, nil)
		if len(got) != len(want) {
			t.Fatalf("bulk query %v: got %d, want %d", r, len(got), len(want))
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	if tr := BulkLoad(nil); tr.Len() != 0 {
		t.Error("empty bulk load nonzero Len")
	}
	tr := BulkLoad([]Item{{ID: 1, Loc: geo.Pt(0.5, 0.5)}})
	if tr.Len() != 1 {
		t.Error("single-item bulk load")
	}
	if it, ok := tr.NearestOne(geo.Pt(0, 0)); !ok || it.ID != 1 {
		t.Error("single-item nearest")
	}
}

func TestFromPoints(t *testing.T) {
	tr := FromPoints([]geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	all := tr.All(nil)
	ids := map[uint64]bool{}
	for _, it := range all {
		ids[it.ID] = true
	}
	if !ids[1] || !ids[2] {
		t.Errorf("FromPoints ids = %v", ids)
	}
}

func TestDelete(t *testing.T) {
	pts := testPoints(t, 1000, 3)
	tr := New()
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: uint64(i + 1), Loc: p}
		tr.Insert(items[i])
	}
	// Delete half, in random order.
	perm := make([]int, len(items))
	rng.New(7).Perm(perm)
	deleted := map[uint64]bool{}
	for _, i := range perm[:500] {
		if !tr.Delete(items[i].ID, items[i].Loc) {
			t.Fatalf("Delete(%d) failed", items[i].ID)
		}
		deleted[items[i].ID] = true
	}
	if tr.Len() != 500 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.Search(world, nil)
	if len(got) != 500 {
		t.Fatalf("search after deletes returned %d", len(got))
	}
	for _, it := range got {
		if deleted[it.ID] {
			t.Fatalf("deleted item %d still present", it.ID)
		}
	}
	// Deleting a missing item returns false.
	if tr.Delete(999999, geo.Pt(0.5, 0.5)) {
		t.Error("Delete of missing item returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	pts := testPoints(t, 300, 11)
	tr := New()
	for i, p := range pts {
		tr.Insert(Item{ID: uint64(i + 1), Loc: p})
	}
	for i, p := range pts {
		if !tr.Delete(uint64(i+1), p) {
			t.Fatalf("delete %d failed", i+1)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", tr.Len())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("bounds nonempty after deleting all")
	}
	// Tree remains usable.
	tr.Insert(Item{ID: 1, Loc: geo.Pt(0.5, 0.5)})
	if tr.Len() != 1 {
		t.Error("insert after full delete failed")
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	pts := testPoints(t, 3000, 4)
	tr := FromPoints(pts)
	src := rng.New(13)
	for q := 0; q < 30; q++ {
		query := geo.Pt(src.Float64(), src.Float64())
		got := tr.Nearest(query, 10)
		if len(got) != 10 {
			t.Fatalf("Nearest returned %d items", len(got))
		}
		// Brute force.
		type pd struct {
			id uint64
			d  float64
		}
		all := make([]pd, len(pts))
		for i, p := range pts {
			all[i] = pd{uint64(i + 1), query.Dist2(p)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := range got {
			if got[i].Loc.Dist2(query) != all[i].d {
				t.Fatalf("Nearest[%d] dist %v, want %v", i, got[i].Loc.Dist2(query), all[i].d)
			}
		}
		// Distances must be sorted.
		for i := 1; i < len(got); i++ {
			if query.Dist2(got[i].Loc) < query.Dist2(got[i-1].Loc) {
				t.Fatal("Nearest not sorted by distance")
			}
		}
	}
}

func TestBrowserExhaustsAllSorted(t *testing.T) {
	pts := testPoints(t, 500, 6)
	tr := FromPoints(pts)
	b := tr.NewPointBrowser(geo.Pt(0.3, 0.7))
	var prev float64 = -1
	n := 0
	for {
		_, d2, ok := b.Next()
		if !ok {
			break
		}
		if d2 < prev {
			t.Fatalf("browser out of order: %v after %v", d2, prev)
		}
		prev = d2
		n++
	}
	if n != 500 {
		t.Fatalf("browser yielded %d items, want 500", n)
	}
}

func TestBrowserPeek(t *testing.T) {
	tr := FromPoints([]geo.Point{{X: 0.1, Y: 0}, {X: 0.5, Y: 0}})
	b := tr.NewPointBrowser(geo.Pt(0, 0))
	d2, ok := b.Peek2()
	if !ok || math.Abs(d2-0.01) > 1e-12 {
		t.Fatalf("Peek2 = %v, %v", d2, ok)
	}
	it, d2b, _ := b.Next()
	if d2b != d2 || it.Loc.X != 0.1 {
		t.Fatal("Peek did not match Next")
	}
	b.Next()
	if _, ok := b.Peek2(); ok {
		t.Error("Peek2 on exhausted browser reported ok")
	}
}

func TestRectBrowser(t *testing.T) {
	pts := testPoints(t, 1000, 8)
	tr := FromPoints(pts)
	q := geo.R(0.4, 0.4, 0.6, 0.6)
	b := tr.NewRectBrowser(q)
	var prev float64 = -1
	inside := 0
	for {
		it, d2, ok := b.Next()
		if !ok {
			break
		}
		if d2 < prev {
			t.Fatal("rect browser out of order")
		}
		prev = d2
		if q.Contains(it.Loc) {
			if d2 != 0 {
				t.Fatalf("item inside rect has dist2 %v", d2)
			}
			inside++
		}
	}
	if want := tr.Count(q); inside != want {
		t.Fatalf("rect browser found %d inside, Count says %d", inside, want)
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := FromPoints([]geo.Point{{X: 0.5, Y: 0.5}})
	if got := tr.Nearest(geo.Pt(0, 0), 0); got != nil {
		t.Error("Nearest k=0 should be nil")
	}
	if got := tr.Nearest(geo.Pt(0, 0), 5); len(got) != 1 {
		t.Errorf("Nearest k>size returned %d", len(got))
	}
}

func TestDuplicateLocations(t *testing.T) {
	tr := New()
	p := geo.Pt(0.5, 0.5)
	for i := 0; i < 100; i++ {
		tr.Insert(Item{ID: uint64(i + 1), Loc: p})
	}
	if tr.Len() != 100 {
		t.Fatal("duplicate-location inserts lost items")
	}
	got := tr.Search(geo.RectAround(p, 0.01), nil)
	if len(got) != 100 {
		t.Fatalf("search found %d of 100 co-located items", len(got))
	}
	// Delete one specific ID among duplicates.
	if !tr.Delete(50, p) {
		t.Fatal("delete among duplicates failed")
	}
	if tr.Count(geo.RectAround(p, 0.01)) != 99 {
		t.Fatal("wrong count after deleting one duplicate")
	}
}

func TestPropInsertedAlwaysFindable(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: n, World: world, Dist: mobility.Gaussian, Seed: seed,
		})
		if err != nil {
			return false
		}
		tr := New()
		for i, p := range pts {
			tr.Insert(Item{ID: uint64(i + 1), Loc: p})
		}
		if tr.checkInvariants() != nil {
			return false
		}
		// Every inserted point must be findable by a point query.
		for i, p := range pts {
			found := false
			for _, it := range tr.Search(geo.PointRect(p), nil) {
				if it.ID == uint64(i+1) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropNearestOneIsTrueMinimum(t *testing.T) {
	f := func(seed uint64, qx, qy float64) bool {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsInf(qx, 0) || math.IsInf(qy, 0) {
			return true
		}
		qx = math.Mod(math.Abs(qx), 1)
		qy = math.Mod(math.Abs(qy), 1)
		pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: 200, World: world, Dist: mobility.Uniform, Seed: seed,
		})
		if err != nil {
			return false
		}
		tr := FromPoints(pts)
		q := geo.Pt(qx, qy)
		got, ok := tr.NearestOne(q)
		if !ok {
			return false
		}
		best := math.Inf(1)
		for _, p := range pts {
			if d := q.Dist2(p); d < best {
				best = d
			}
		}
		return q.Dist2(got.Loc) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDepth(t *testing.T) {
	if New().Depth() != 0 {
		t.Error("empty depth != 0")
	}
	tr := FromPoints(testPoints(t, 10000, 10))
	d := tr.Depth()
	if d < 3 || d > 6 {
		t.Errorf("10k-item tree depth = %d, expected a packed shallow tree", d)
	}
}

func BenchmarkInsert(b *testing.B) {
	pts := testPoints(b, 100000, 1)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		tr.Insert(Item{ID: uint64(i), Loc: p})
	}
}

func BenchmarkSearch10k(b *testing.B) {
	tr := FromPoints(testPoints(b, 10000, 2))
	r := geo.R(0.4, 0.4, 0.6, 0.6)
	var buf []Item
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Search(r, buf[:0])
	}
}

func BenchmarkNearest10k(b *testing.B) {
	tr := FromPoints(testPoints(b, 10000, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(geo.Pt(0.5, 0.5), 10)
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	pts := testPoints(b, 10000, 4)
	items := make([]Item, len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range pts {
			items[j] = Item{ID: uint64(j + 1), Loc: p}
		}
		BulkLoad(items)
	}
}
