package trace

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Merge combines span sets pulled from several processes into one
// timeline: duplicates (the same span pulled twice, or present in both a
// main and a slow ring) are dropped, and the result is ordered by start
// time, then by process and span ID for determinism.
func Merge(groups ...[]SpanRecord) []SpanRecord {
	type key struct {
		proc    string
		traceID uint64
		spanID  uint64
	}
	seen := make(map[key]struct{})
	var out []SpanRecord
	for _, g := range groups {
		for _, rec := range g {
			k := key{rec.Proc, rec.TraceID, rec.SpanID}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].Proc != out[b].Proc {
			return out[a].Proc < out[b].Proc
		}
		return out[a].SpanID < out[b].SpanID
	})
	return out
}

// WriteChromeJSON writes the spans in the Chrome trace-event format
// (the "traceEvents" array of complete "X" events), which Perfetto and
// chrome://tracing load directly. Each process becomes one named process
// track; within a process, spans of one trace share a thread track so a
// request reads as one horizontal lane.
func WriteChromeJSON(w io.Writer, spans []SpanRecord) error {
	procs := make(map[string]int)
	var names []string
	for i := range spans {
		if _, ok := procs[spans[i].Proc]; !ok {
			procs[spans[i].Proc] = 0
			names = append(names, spans[i].Proc)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		procs[n] = i + 1
	}

	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, s)
		return err
	}
	for _, n := range names {
		ev := fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			procs[n], strconv.Quote(n))
		if err := emit(ev); err != nil {
			return err
		}
	}
	for i := range spans {
		if err := emit(chromeEvent(&spans[i], procs[spans[i].Proc])); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// chromeEvent renders one span as a complete event. Timestamps are
// microseconds (float, so sub-µs spans keep their duration); the thread
// id is derived from the trace id so each request gets its own lane.
func chromeEvent(rec *SpanRecord, pid int) string {
	tid := int64(rec.TraceID & 0x7fffffff)
	if tid == 0 {
		tid = 1
	}
	buf := make([]byte, 0, 192)
	buf = append(buf, fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":%s,"args":{"trace_id":"%016x","span_id":"%016x","parent_id":"%016x"`,
		pid, tid,
		float64(rec.Start)/1e3, float64(rec.Dur)/1e3,
		strconv.Quote(rec.Name), rec.TraceID, rec.SpanID, rec.ParentID)...)
	for _, a := range rec.Attrs {
		buf = append(buf, ',')
		buf = append(buf, strconv.Quote(a.Key)...)
		buf = append(buf, ':')
		if a.IsStr {
			buf = append(buf, strconv.Quote(a.Str)...)
		} else {
			buf = strconv.AppendInt(buf, a.Int, 10)
		}
	}
	buf = append(buf, "}}"...)
	return string(buf)
}

// Handler serves the tracer's current snapshot as Chrome trace-event
// JSON — the /traces endpoint a daemon mounts next to /metrics. Safe on
// a nil tracer (404: tracing not enabled).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteChromeJSON(w, Merge(t.Snapshot()))
	})
}

// Summary is the per-trace latency attribution the load tool prints: for
// each trace, the root span plus self-time (span duration minus direct
// children) aggregated per process and stage name.
type Summary struct {
	TraceID uint64
	Root    SpanRecord
	Spans   int
	// Self maps "proc/name" to aggregate self-time across the trace.
	Self map[string]time.Duration
}

// Summarize groups spans by trace, computes self-time attribution, and
// returns the traces ordered slowest-root first. Spans whose root was
// evicted from its ring are grouped under their trace anyway, with the
// longest available span standing in as root.
func Summarize(spans []SpanRecord) []Summary {
	byTrace := make(map[uint64][]SpanRecord)
	for _, rec := range spans {
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	out := make([]Summary, 0, len(byTrace))
	for id, recs := range byTrace {
		s := Summary{TraceID: id, Spans: len(recs), Self: make(map[string]time.Duration)}
		childDur := make(map[uint64]int64) // parent span id → Σ direct children
		for _, rec := range recs {
			if rec.ParentID != 0 {
				childDur[rec.ParentID] += rec.Dur
			}
		}
		var root *SpanRecord
		for i := range recs {
			rec := &recs[i]
			self := rec.Dur - childDur[rec.SpanID]
			if self < 0 {
				self = 0 // cross-process clock skew can overlap children
			}
			s.Self[rec.Proc+"/"+rec.Name] += time.Duration(self)
			if rec.ParentID == 0 && (root == nil || rec.Dur > root.Dur) {
				root = rec
			}
			if root == nil || (root.ParentID != 0 && rec.Dur > root.Dur) {
				root = rec
			}
		}
		s.Root = *root
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Root.Dur != out[b].Root.Dur {
			return out[a].Root.Dur > out[b].Root.Dur
		}
		return out[a].TraceID < out[b].TraceID
	})
	return out
}
