// Package wiresym implements the lbsvet pass that proves the wire
// surface is symmetric: for every exported Msg* constant in a package
// that declares wire message types, the encode shape on one side of the
// connection must match the decode shape on the other.
//
// The pass enumerates the census — every exported `Msg*` byte constant —
// and proves, per type:
//
//	(a) symmetry: the field-op sequence a client encodes into a request
//	    is the sequence the handler decodes, and the sequence the handler
//	    encodes into the response is the sequence the client decodes.
//	    Fixed-shape sides compare as exact sequences; shapes with ops
//	    under loops or branches compare as op sets.
//	(b) guarded allocation: any make() whose size derives from a decoded
//	    scalar must be bounded by capHint(...), the Remaining()-aware
//	    preallocation clamp, so a 5-byte frame cannot reserve gigabytes.
//	(c) dispatch: the type is answered by a wire handler (the canonical
//	    func(ctx, typ, payload) signature switching on typ, or a
//	    //lint:wire-handler annotated dispatcher) or is explicitly
//	    //lint:client-only <why>.
//	(d) fuzz coverage: a type whose decode path needs capHint is
//	    variable-length and must have a FuzzDecode<Name> target (override:
//	    //lint:fuzzed-by <target> <why>) that exists in the package's
//	    test files and is listed in the Makefile fuzz-smoke loop and the
//	    CI workflow found at the module root.
//
// Shapes are computed by symbolic inlining: same-package helpers are
// expanded (encodeProfile's ops count as the caller's), Encoder/Decoder
// method calls emit tokens, and transport functions that carry opaque
// []byte payloads (Call, the Service dispatch, envelope codecs) are
// boundaries — their internal ops belong to the envelope, not to the
// message being proven. //lint:wire-asym <why> waives symmetry for the
// few types threaded through the shared transport path itself.
package wiresym

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the wiresym pass.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "prove the Msg* wire surface symmetric, guarded and fuzzed\n\n" +
		"Every exported Msg* byte constant must be dispatched (or\n" +
		"//lint:client-only), encode/decode the same field sequence on both\n" +
		"sides, capHint-guard its allocations, and carry a fuzz target when\n" +
		"its decode path is variable-length.",
	Run: run,
}

// Const is one census entry: an exported Msg* byte constant.
type Const struct {
	Name string
	Pos  token.Pos
	Obj  types.Object
}

// Census enumerates the exported Msg* byte constants declared in files.
// Exported so the self-test can diff it against wire.go's const block.
func Census(info *types.Info, files []*ast.File) []Const {
	var out []Const
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Msg") || !name.IsExported() {
						continue
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					b, ok := obj.Type().Underlying().(*types.Basic)
					if !ok || b.Kind() != types.Uint8 {
						continue
					}
					out = append(out, Const{Name: name.Name, Pos: name.Pos(), Obj: obj})
				}
			}
		}
	}
	return out
}

// ---- op bags -------------------------------------------------------------

type opKind int

const (
	opEnc opKind = iota
	opDec
)

type op struct {
	kind opKind
	name string
}

// bag is the codec summary of one region of code: the Encoder/Decoder
// method tokens it emits in source order, whether any token sits under a
// loop or branch (varShape: compare as a set, not a sequence), and
// whether a capHint clamp is reached (the variable-length marker that
// demands fuzz coverage).
type bag struct {
	ops      []op
	varShape bool
	capHint  bool
}

func (b *bag) add(o op, depth int) {
	b.ops = append(b.ops, o)
	if depth > 0 {
		b.varShape = true
	}
}

func (b *bag) merge(other *bag, depth int) {
	if len(other.ops) > 0 {
		b.ops = append(b.ops, other.ops...)
		if depth > 0 || other.varShape {
			b.varShape = true
		}
	}
	b.capHint = b.capHint || other.capHint
}

func (b *bag) side(k opKind) []string {
	var out []string
	for _, o := range b.ops {
		if o.kind == k {
			out = append(out, o.name)
		}
	}
	return out
}

func opSet(ops []string) map[string]bool {
	s := make(map[string]bool, len(ops))
	for _, o := range ops {
		s[o] = true
	}
	return s
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func seqEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtOps(ops []string) string {
	return "[" + strings.Join(ops, " ") + "]"
}

func fmtSet(s map[string]bool) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, " ") + "}"
}

// ---- the symbolic-inlining engine ---------------------------------------

var codecOps = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true,
	"F64": true, "Str": true, "Point": true, "Rect": true,
}

// codecAlias maps codec methods that are wire-compatible variants of a
// canonical op to that op: StrCache decodes exactly the bytes Str does
// (it only interns the result), so both sides of a pair stay symmetric
// when one of them interns.
var codecAlias = map[string]string{"StrCache": "Str"}

// scalar decoder reads that can size an allocation.
var sizeOps = map[string]bool{"U8": true, "U16": true, "U32": true, "U64": true}

type engine struct {
	info   *types.Info
	pkg    *types.Package
	decls  map[*types.Func]*ast.FuncDecl
	memo   map[*types.Func]*bag
	active map[*types.Func]bool
}

// codecRecv classifies e.X's receiver as Encoder or Decoder.
func (g *engine) codecRecv(x ast.Expr) (opKind, bool) {
	t := g.info.TypeOf(x)
	if t == nil {
		return 0, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	switch named.Obj().Name() {
	case "Encoder":
		return opEnc, true
	case "Decoder":
		return opDec, true
	}
	return 0, false
}

// callee resolves a call to its declared function, if any.
func (g *engine) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = g.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = g.info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// opaque reports whether fn is a transport boundary: it accepts an
// opaque []byte payload and produces one, so its internal codec ops
// belong to the envelope, not to the message under proof.
func opaque(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	byteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint8
	}
	in, out := false, false
	for i := 0; i < sig.Params().Len(); i++ {
		if byteSlice(sig.Params().At(i).Type()) {
			in = true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if byteSlice(sig.Results().At(i).Type()) {
			out = true
		}
	}
	return in && out
}

// fnBag returns fn's memoized codec summary, inlining same-package
// callees. Cycles contribute nothing (the recursion's other ops are
// already being collected).
func (g *engine) fnBag(fn *types.Func) *bag {
	if b, ok := g.memo[fn]; ok {
		return b
	}
	if g.active[fn] {
		return &bag{}
	}
	decl, ok := g.decls[fn]
	if !ok || decl.Body == nil {
		b := &bag{}
		g.memo[fn] = b
		return b
	}
	g.active[fn] = true
	b := &bag{}
	g.collectStmts(decl.Body.List, 0, b)
	delete(g.active, fn)
	g.memo[fn] = b
	return b
}

func (g *engine) collectStmts(stmts []ast.Stmt, depth int, b *bag) {
	for _, s := range stmts {
		g.stmt(s, depth, b)
	}
}

func (g *engine) stmt(s ast.Stmt, depth int, b *bag) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		g.collectStmts(s.List, depth, b)
	case *ast.ExprStmt:
		g.expr(s.X, depth, b)
	case *ast.SendStmt:
		g.expr(s.Value, depth, b)
	case *ast.IncDecStmt:
		g.expr(s.X, depth, b)
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			g.expr(l, depth, b)
		}
		for _, r := range s.Rhs {
			g.expr(r, depth, b)
		}
	case *ast.GoStmt:
		g.expr(s.Call, depth+1, b)
	case *ast.DeferStmt:
		g.expr(s.Call, depth+1, b)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.expr(r, depth, b)
		}
	case *ast.IfStmt:
		g.stmt(s.Init, depth, b)
		if s.Cond != nil {
			g.expr(s.Cond, depth, b) // the condition always evaluates
		}
		g.stmt(s.Body, depth+1, b)
		g.stmt(s.Else, depth+1, b)
	case *ast.ForStmt:
		g.stmt(s.Init, depth, b)
		if s.Cond != nil {
			g.expr(s.Cond, depth+1, b)
		}
		g.stmt(s.Post, depth+1, b)
		g.stmt(s.Body, depth+1, b)
	case *ast.RangeStmt:
		g.expr(s.X, depth, b)
		g.stmt(s.Body, depth+1, b)
	case *ast.SwitchStmt:
		g.stmt(s.Init, depth, b)
		if s.Tag != nil {
			g.expr(s.Tag, depth, b)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					g.expr(e, depth+1, b)
				}
				g.collectStmts(clause.Body, depth+1, b)
			}
		}
	case *ast.TypeSwitchStmt:
		g.stmt(s.Init, depth, b)
		g.stmt(s.Assign, depth, b)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				g.collectStmts(clause.Body, depth+1, b)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				g.stmt(clause.Comm, depth+1, b)
				g.collectStmts(clause.Body, depth+1, b)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.expr(v, depth, b)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		g.stmt(s.Stmt, depth, b)
	}
}

// expr walks in evaluation order: for chained calls e.U64(x).Rect(r) the
// receiver chain (inner call) is visited before the outer call's token
// is emitted, so sequences come out in wire order.
func (g *engine) expr(x ast.Expr, depth int, b *bag) {
	switch x := x.(type) {
	case nil:
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			g.expr(sel.X, depth, b)
		} else if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
			g.stmt(lit.Body, depth+1, b)
		}
		for _, a := range x.Args {
			g.expr(a, depth, b)
		}
		g.classifyCall(x, depth, b)
	case *ast.ParenExpr:
		g.expr(x.X, depth, b)
	case *ast.UnaryExpr:
		g.expr(x.X, depth, b)
	case *ast.StarExpr:
		g.expr(x.X, depth, b)
	case *ast.BinaryExpr:
		g.expr(x.X, depth, b)
		g.expr(x.Y, depth, b)
	case *ast.SelectorExpr:
		g.expr(x.X, depth, b)
	case *ast.IndexExpr:
		g.expr(x.X, depth, b)
		g.expr(x.Index, depth, b)
	case *ast.SliceExpr:
		g.expr(x.X, depth, b)
		g.expr(x.Low, depth, b)
		g.expr(x.High, depth, b)
		g.expr(x.Max, depth, b)
	case *ast.TypeAssertExpr:
		g.expr(x.X, depth, b)
	case *ast.CompositeLit:
		for _, e := range x.Elts {
			g.expr(e, depth, b)
		}
	case *ast.KeyValueExpr:
		g.expr(x.Value, depth, b)
	case *ast.FuncLit:
		g.stmt(x.Body, depth+1, b)
	}
}

func (g *engine) classifyCall(call *ast.CallExpr, depth int, b *bag) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if canon, ok := codecAlias[name]; ok {
			name = canon
		}
		if codecOps[name] {
			if kind, ok := g.codecRecv(sel.X); ok {
				b.add(op{kind: kind, name: name}, depth)
				return
			}
		}
	}
	fn := g.callee(call)
	if fn == nil {
		return
	}
	if fn.Name() == "capHint" {
		b.capHint = true
		return
	}
	if fn.Pkg() != g.pkg || opaque(fn) {
		return
	}
	if _, ok := g.decls[fn]; ok {
		b.merge(g.fnBag(fn), depth)
	}
}

// ---- handler detection ---------------------------------------------------

func isHandlerSig(sig *types.Signature) bool {
	p, r := sig.Params(), sig.Results()
	if p.Len() != 3 || r.Len() != 2 {
		return false
	}
	named, ok := p.At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "context" || named.Obj().Name() != "Context" {
		return false
	}
	isByte := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint8
	}
	isByteSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		return ok && isByte(sl.Elem())
	}
	if !isByte(p.At(1).Type()) || !isByteSlice(p.At(2).Type()) {
		return false
	}
	if !isByteSlice(r.At(0).Type()) {
		return false
	}
	named, ok = r.At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// switchesOnByteParam reports whether fd's body contains a switch whose
// tag is one of fd's byte-typed parameters — the dispatch shape, as
// opposed to transport helpers that merely share the signature.
func switchesOnByteParam(info *types.Info, fd *ast.FuncDecl) bool {
	byteParams := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				byteParams[obj] = true
			}
		}
	}
	if len(byteParams) == 0 || fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		if id, ok := ast.Unparen(sw.Tag).(*ast.Ident); ok && byteParams[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func refsObj(n ast.Node, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---- the pass ------------------------------------------------------------

type site struct {
	fnName string
	pos    token.Pos
	bag    *bag
}

func run(pass *analysis.Pass) (interface{}, error) {
	var srcFiles, testFiles []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			srcFiles = append(srcFiles, f)
		}
	}
	census := Census(pass.TypesInfo, srcFiles)
	if len(census) == 0 {
		return nil, nil
	}

	g := &engine{
		info:   pass.TypesInfo,
		pkg:    pass.Pkg,
		decls:  make(map[*types.Func]*ast.FuncDecl),
		memo:   make(map[*types.Func]*bag),
		active: make(map[*types.Func]bool),
	}
	type fnInfo struct {
		fn          *types.Func
		fd          *ast.FuncDecl
		handler     bool
		annotatedWH bool
	}
	var fns []fnInfo
	for _, file := range srcFiles {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			_, annotated := directive.FromDoc(fd.Doc, "wire-handler")
			sig, _ := fn.Type().(*types.Signature)
			sigHandler := sig != nil && isHandlerSig(sig) && switchesOnByteParam(pass.TypesInfo, fd)
			fns = append(fns, fnInfo{fn: fn, fd: fd, handler: annotated || sigHandler, annotatedWH: annotated})
		}
	}

	// Per-constant directives.
	dmaps := make(map[*ast.File]directive.Map)
	for _, file := range srcFiles {
		dmaps[file] = directive.ForFile(pass.Fset, file)
	}
	findDir := func(pos token.Pos, verb string) (directive.Directive, bool) {
		for _, file := range srcFiles {
			if file.Pos() <= pos && pos <= file.End() {
				return dmaps[file].Find(pass.Fset, pos, verb)
			}
		}
		return directive.Directive{}, false
	}

	handlerSites := make(map[types.Object][]site)
	clientSites := make(map[types.Object][]site)
	censusObjs := make(map[types.Object]*Const)
	for i := range census {
		censusObjs[census[i].Obj] = &census[i]
	}

	for _, fi := range fns {
		if fi.handler {
			// Dispatch sites: case clauses naming a census constant; for
			// annotated dispatchers additionally if-conditions naming one
			// (the Service layer's `if obsTyp == MsgMetrics` shape).
			fd := fi.fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SwitchStmt:
					for _, cc := range n.Body.List {
						clause, ok := cc.(*ast.CaseClause)
						if !ok {
							continue
						}
						for obj := range censusObjs {
							hit := false
							for _, e := range clause.List {
								if refsObj(e, pass.TypesInfo, obj) {
									hit = true
									break
								}
							}
							if !hit {
								continue
							}
							b := &bag{}
							g.collectStmts(clause.Body, 0, b)
							handlerSites[obj] = append(handlerSites[obj], site{fnName: fd.Name.Name, pos: clause.Pos(), bag: b})
						}
					}
				case *ast.IfStmt:
					if !fi.annotatedWH || n.Cond == nil {
						return true
					}
					for obj := range censusObjs {
						if refsObj(n.Cond, pass.TypesInfo, obj) {
							b := &bag{}
							g.stmt(n.Body, 0, b)
							handlerSites[obj] = append(handlerSites[obj], site{fnName: fd.Name.Name, pos: n.Pos(), bag: b})
						}
					}
				}
				return true
			})
			continue
		}
		// Client side: any non-handler function referencing the constant.
		var refs []types.Object
		for obj := range censusObjs {
			if refsObj(fi.fd.Body, pass.TypesInfo, obj) {
				refs = append(refs, obj)
			}
		}
		if len(refs) == 0 {
			continue
		}
		b := g.fnBag(fi.fn)
		for _, obj := range refs {
			clientSites[obj] = append(clientSites[obj], site{fnName: fi.fd.Name.Name, pos: fi.fd.Name.Pos(), bag: b})
		}
	}

	for i := range census {
		c := &census[i]
		checkConst(pass, g, c, handlerSites[c.Obj], clientSites[c.Obj], findDir, srcFiles, testFiles)
	}

	checkCapHintGuards(pass, g, srcFiles)
	return nil, nil
}

// checkConst runs the per-type proofs (a), (c) and (d).
func checkConst(pass *analysis.Pass, g *engine, c *Const, hs, cs []site,
	findDir func(token.Pos, string) (directive.Directive, bool), srcFiles, testFiles []*ast.File) {

	clientOnly, hasClientOnly := findDir(c.Pos, "client-only")
	wireAsym, hasWireAsym := findDir(c.Pos, "wire-asym")
	fuzzedBy, hasFuzzedBy := findDir(c.Pos, "fuzzed-by")
	if hasClientOnly && clientOnly.Args == "" {
		pass.Reportf(clientOnly.Pos, "//lint:client-only on %s needs a justification", c.Name)
	}
	if hasWireAsym && wireAsym.Args == "" {
		pass.Reportf(wireAsym.Pos, "//lint:wire-asym on %s needs a justification", c.Name)
	}

	// (c) dispatch.
	dispatched := len(hs) > 0
	switch {
	case !dispatched && !hasClientOnly:
		pass.Reportf(c.Pos, "%s is not dispatched by any wire handler; add a handler case or annotate //lint:client-only <why>", c.Name)
	case dispatched && hasClientOnly:
		pass.Reportf(clientOnly.Pos, "%s is annotated //lint:client-only but %s dispatches it; drop the annotation", c.Name, hs[0].fnName)
	}
	if len(cs) == 0 {
		pass.Reportf(c.Pos, "%s has no encoder/decoder outside the handlers: dead wire type or missing client", c.Name)
	}

	// (a) symmetry.
	if !hasWireAsym {
		if hasClientOnly {
			// No handler side: prove the union of client encodes matches the
			// union of client decodes (the sub-frame is built and consumed on
			// the same tier, e.g. MsgBatchResult inside a MsgBatchQuery OK).
			encU, decU := map[string]bool{}, map[string]bool{}
			for _, s := range cs {
				for _, o := range s.bag.side(opEnc) {
					encU[o] = true
				}
				for _, o := range s.bag.side(opDec) {
					decU[o] = true
				}
			}
			if len(encU) > 0 && len(decU) > 0 && !setsEqual(encU, decU) {
				pass.Reportf(c.Pos, "wire shape mismatch for %s: encoded fields %s but decoded fields %s; the client-only pair drifted",
					c.Name, fmtSet(encU), fmtSet(decU))
			}
		} else {
			for _, h := range hs {
				for _, cl := range cs {
					compareShapes(pass, c, "request", cl, h, cl.bag.side(opEnc), h.bag.side(opDec), cl.bag.varShape || h.bag.varShape)
					compareShapes(pass, c, "response", cl, h, h.bag.side(opEnc), cl.bag.side(opDec), cl.bag.varShape || h.bag.varShape)
				}
			}
		}
	}

	// (d) fuzz coverage.
	needFuzz := false
	for _, s := range append(append([]site{}, hs...), cs...) {
		if s.bag.capHint {
			needFuzz = true
		}
	}
	target := "FuzzDecode" + strings.TrimPrefix(c.Name, "Msg")
	if hasFuzzedBy {
		fields := strings.Fields(fuzzedBy.Args)
		if len(fields) < 2 {
			pass.Reportf(fuzzedBy.Pos, "//lint:fuzzed-by on %s wants <FuzzTarget> <why>", c.Name)
			return
		}
		target = fields[0]
	}
	if !needFuzz && !hasFuzzedBy {
		return
	}
	fuzzDecls := fuzzTargets(pass, testFiles)
	if !fuzzDecls[target] {
		if hasFuzzedBy {
			pass.Reportf(fuzzedBy.Pos, "//lint:fuzzed-by on %s names %s, which does not exist in this package's test files; the annotation is stale", c.Name, target)
		} else {
			pass.Reportf(c.Pos, "%s has a capHint-guarded (variable-length) decode path but no %s fuzz target; add one or annotate //lint:fuzzed-by <target> <why>", c.Name, target)
		}
		return
	}
	if !needFuzz {
		return
	}
	checkFuzzListed(pass, c, target, srcFiles)
}

func compareShapes(pass *analysis.Pass, c *Const, dir string, cl, h site, enc, dec []string, varShape bool) {
	if len(enc) == 0 || len(dec) == 0 {
		return
	}
	if varShape {
		encS, decS := opSet(enc), opSet(dec)
		if !setsEqual(encS, decS) {
			pass.Reportf(cl.pos, "wire shape mismatch for %s %s: %s encodes fields %s but %s decodes fields %s",
				c.Name, dir, encName(dir, cl, h), fmtSet(encS), decName(dir, cl, h), fmtSet(decS))
		}
		return
	}
	if !seqEqual(enc, dec) {
		pass.Reportf(cl.pos, "wire shape mismatch for %s %s: %s encodes %s but %s decodes %s",
			c.Name, dir, encName(dir, cl, h), fmtOps(enc), decName(dir, cl, h), fmtOps(dec))
	}
}

func encName(dir string, cl, h site) string {
	if dir == "request" {
		return cl.fnName
	}
	return h.fnName
}

func decName(dir string, cl, h site) string {
	if dir == "request" {
		return h.fnName
	}
	return cl.fnName
}

// fuzzTargets collects Fuzz* function names from the package's test
// files: the loaded ones (fixture packages include them) plus any
// *_test.go files on disk next to the sources (the production loader
// excludes test files, so they are parsed separately here).
func fuzzTargets(pass *analysis.Pass, testFiles []*ast.File) map[string]bool {
	out := make(map[string]bool)
	loaded := make(map[string]bool)
	collect := func(f *ast.File) {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Fuzz") {
				out[fd.Name.Name] = true
			}
		}
	}
	for _, f := range testFiles {
		loaded[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] = true
		collect(f)
	}
	if len(pass.Files) == 0 {
		return out
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, "_test.go") || loaded[name] {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		collect(f)
	}
	return out
}

// checkFuzzListed walks up from the package directory to the nearest
// Makefile (the module root; fixtures carry their own) and requires the
// fuzz target to appear there and in any CI workflow under
// .github/workflows at that root.
func checkFuzzListed(pass *analysis.Pass, c *Const, target string, srcFiles []*ast.File) {
	dir := filepath.Dir(pass.Fset.Position(srcFiles[0].Pos()).Filename)
	root := ""
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "Makefile")); err == nil {
			root = d
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if root == "" {
		return // no Makefile anywhere above: nothing to be listed in
	}
	mk, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err == nil && !containsWord(string(mk), target) {
		pass.Reportf(c.Pos, "fuzz target %s (for %s) is not in the Makefile fuzz-smoke list at %s", target, c.Name, filepath.Join(root, "Makefile"))
	}
	wfDir := filepath.Join(root, ".github", "workflows")
	entries, err := os.ReadDir(wfDir)
	if err != nil || len(entries) == 0 {
		return
	}
	found := false
	checked := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".yml") && !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		wf, err := os.ReadFile(filepath.Join(wfDir, e.Name()))
		if err != nil {
			continue
		}
		checked = true
		if containsWord(string(wf), target) {
			found = true
		}
	}
	if checked && !found {
		pass.Reportf(c.Pos, "fuzz target %s (for %s) is not in the CI fuzz loop under %s", target, c.Name, wfDir)
	}
}

// containsWord reports whether s contains w as a whole identifier (no
// [A-Za-z0-9_] on either side), so FuzzDecodeBatch does not satisfy a
// FuzzDecodeBatchQuery requirement.
func containsWord(s, w string) bool {
	for i := 0; ; {
		j := strings.Index(s[i:], w)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !isWordByte(s[j-1])
		end := j + len(w)
		after := end >= len(s) || !isWordByte(s[end])
		if before && after {
			return true
		}
		i = j + 1
	}
}

func isWordByte(b byte) bool {
	return b == '_' || ('0' <= b && b <= '9') || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

// checkCapHintGuards is proof (b): inside every function of a package
// that declares wire constants, any make() sized by a value read from a
// Decoder scalar must clamp through capHint(...).
func checkCapHintGuards(pass *analysis.Pass, g *engine, srcFiles []*ast.File) {
	for _, file := range srcFiles {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tainted := make(map[types.Object]bool)
			decoderScalar := func(n ast.Node) bool {
				found := false
				ast.Inspect(n, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !sizeOps[sel.Sel.Name] {
						return true
					}
					if kind, ok := g.codecRecv(sel.X); ok && kind == opDec {
						found = true
					}
					return !found
				})
				return found
			}
			taintLHS := func(lhs []ast.Expr) {
				for _, l := range lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							tainted[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, r := range n.Rhs {
						if !decoderScalar(r) {
							continue
						}
						if len(n.Lhs) == len(n.Rhs) {
							taintLHS(n.Lhs[i : i+1])
						} else {
							taintLHS(n.Lhs)
						}
					}
				case *ast.ValueSpec:
					for _, v := range n.Values {
						if decoderScalar(v) {
							for _, id := range n.Names {
								if obj := pass.TypesInfo.Defs[id]; obj != nil {
									tainted[obj] = true
								}
							}
						}
					}
				}
				return true
			})
			usesTaint := func(e ast.Expr) bool {
				if decoderScalar(e) {
					return true
				}
				found := false
				ast.Inspect(e, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && tainted[pass.TypesInfo.Uses[id]] && pass.TypesInfo.Uses[id] != nil {
						found = true
					}
					return !found
				})
				return found
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "make" {
					return true
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					return true
				}
				for _, sz := range call.Args[1:] {
					if !usesTaint(sz) {
						continue
					}
					if isCapHintCall(pass, sz) {
						continue
					}
					pass.Reportf(sz.Pos(), "allocation sized by a wire-decoded value without a capHint(...) clamp: a short frame can claim unbounded memory")
				}
				return true
			})
		}
	}
}

func isCapHintCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && fn.Name() == "capHint" {
			return true
		}
		// int(capHint(...)) style conversions unwrap one level.
		if _, ok := pass.TypesInfo.Uses[fun].(*types.TypeName); ok && len(call.Args) == 1 {
			return isCapHintCall(pass, call.Args[0])
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Name() == "capHint" {
			return true
		}
	}
	return false
}
