package prob

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestOverlap(t *testing.T) {
	region := geo.R(0, 0, 2, 2)
	cases := []struct {
		query geo.Rect
		want  float64
	}{
		{geo.R(0, 0, 2, 2), 1},            // full overlap
		{geo.R(0, 0, 1, 2), 0.5},          // half
		{geo.R(0, 0, 1, 1), 0.25},         // quarter
		{geo.R(5, 5, 6, 6), 0},            // disjoint
		{geo.R(-1, -1, 3, 3), 1},          // query contains region
		{geo.R(1, 1, 1.5, 1.5), 1.0 / 16}, // interior sliver
	}
	for _, c := range cases {
		if got := Overlap(region, c.query); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Overlap(%v) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestOverlapDegenerateRegion(t *testing.T) {
	pt := geo.PointRect(geo.Pt(1, 1))
	if got := Overlap(pt, geo.R(0, 0, 2, 2)); got != 1 {
		t.Errorf("point inside query = %v, want 1", got)
	}
	if got := Overlap(pt, geo.R(5, 5, 6, 6)); got != 0 {
		t.Errorf("point outside query = %v, want 0", got)
	}
}

func TestPoissonBinomialKnownValues(t *testing.T) {
	// Two fair coins: P = [0.25, 0.5, 0.25].
	pdf := PoissonBinomial([]float64{0.5, 0.5})
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(pdf[i]-want[i]) > 1e-12 {
			t.Errorf("pdf[%d] = %v, want %v", i, pdf[i], want[i])
		}
	}
	// Certain events shift the distribution.
	pdf = PoissonBinomial([]float64{1, 1, 0.5})
	if math.Abs(pdf[2]-0.5) > 1e-12 || math.Abs(pdf[3]-0.5) > 1e-12 {
		t.Errorf("pdf with certainties = %v", pdf)
	}
	// Empty input: P(0 successes) = 1.
	pdf = PoissonBinomial(nil)
	if len(pdf) != 1 || pdf[0] != 1 {
		t.Errorf("empty pdf = %v", pdf)
	}
}

// The paper's Figure 6a worked example: probabilities 1, .75, .5, .2, .25
// must give expected value 2.7 and interval [1, 5].
func TestPaperFigure6aExample(t *testing.T) {
	ans := RangeCount([]float64{1, 0.75, 0.5, 0.2, 0.25, 0})
	if math.Abs(ans.Expected-2.7) > 1e-12 {
		t.Errorf("Expected = %v, want 2.7", ans.Expected)
	}
	if ans.Lo != 1 || ans.Hi != 5 {
		t.Errorf("interval = [%d,%d], want [1,5]", ans.Lo, ans.Hi)
	}
	if math.Abs(ans.Mean()-2.7) > 1e-9 {
		t.Errorf("PDF mean = %v, want 2.7", ans.Mean())
	}
	// PDF sums to 1 and P(count=0) = 0 because one user is certain.
	sum := 0.0
	for _, p := range ans.PDF {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PDF sum = %v", sum)
	}
	if ans.PDF[0] != 0 {
		t.Errorf("P(0) = %v, want 0", ans.PDF[0])
	}
	if ans.ProbAtLeast(1) < 1-1e-9 {
		t.Errorf("P(≥1) = %v, want 1", ans.ProbAtLeast(1))
	}
	if ans.ProbAtLeast(6) != 0 {
		t.Errorf("P(≥6) = %v, want 0", ans.ProbAtLeast(6))
	}
}

func TestRangeCountClamping(t *testing.T) {
	ans := RangeCount([]float64{-0.5, 1.5, math.NaN(), 0.5})
	// -0.5 -> 0 (dropped), 1.5 -> 1, NaN -> 0 (dropped), 0.5 stays.
	if ans.Lo != 1 || ans.Hi != 2 {
		t.Errorf("clamped interval = [%d,%d], want [1,2]", ans.Lo, ans.Hi)
	}
	if math.Abs(ans.Expected-1.5) > 1e-12 {
		t.Errorf("clamped Expected = %v, want 1.5", ans.Expected)
	}
}

func TestCountAnswerMode(t *testing.T) {
	ans := RangeCount([]float64{0.9, 0.9, 0.9})
	if ans.Mode() != 3 {
		t.Errorf("Mode = %d, want 3", ans.Mode())
	}
	if ans.String() == "" {
		t.Error("empty String")
	}
}

func TestCountAnswerProbAtLeastNegative(t *testing.T) {
	ans := RangeCount([]float64{0.5})
	if got := ans.ProbAtLeast(-3); math.Abs(got-1) > 1e-12 {
		t.Errorf("ProbAtLeast(-3) = %v, want 1", got)
	}
}

// Property: for random probability vectors the PDF sums to 1, its mean
// equals the expected value, and [Lo,Hi] brackets the support.
func TestPropRangeCountConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		probs := make([]float64, len(raw))
		for i, r := range raw {
			probs[i] = float64(r) / 255
		}
		ans := RangeCount(probs)
		sum := 0.0
		for _, p := range ans.PDF {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		if math.Abs(ans.Mean()-ans.Expected) > 1e-6 {
			return false
		}
		// Support within [Lo, Hi]: P(count < Lo) = P(count > Hi) = 0.
		for i := 0; i < ans.Lo && i < len(ans.PDF); i++ {
			if ans.PDF[i] > 1e-12 {
				return false
			}
		}
		for i := ans.Hi + 1; i < len(ans.PDF); i++ {
			if ans.PDF[i] > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNNProbabilitiesDeterministic(t *testing.T) {
	q := geo.Pt(0, 0)
	cands := []Candidate{
		{ID: 1, Region: geo.R(0.1, 0.1, 0.3, 0.3)},
		{ID: 2, Region: geo.R(0.5, 0.5, 0.9, 0.9)},
	}
	a := NNProbabilities(q, cands, 2000, 7)
	b := NNProbabilities(q, cands, 2000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different estimates")
		}
	}
}

func TestNNProbabilitiesDominance(t *testing.T) {
	q := geo.Pt(0, 0)
	// Candidate 1 is strictly closer than candidate 2 everywhere.
	cands := []Candidate{
		{ID: 1, Region: geo.R(0.1, 0.1, 0.2, 0.2)},
		{ID: 2, Region: geo.R(0.8, 0.8, 0.9, 0.9)},
	}
	probs := NNProbabilities(q, cands, 5000, 3)
	if probs[0].Prob != 1 || probs[1].Prob != 0 {
		t.Errorf("dominated candidate got probability: %v", probs)
	}
	best, ok := Best(probs)
	if !ok || best.ID != 1 {
		t.Errorf("Best = %v, %v", best, ok)
	}
}

func TestNNProbabilitiesSymmetric(t *testing.T) {
	q := geo.Pt(0.5, 0)
	// Two candidates mirror-symmetric about x=0.5: each should win ≈ half.
	cands := []Candidate{
		{ID: 1, Region: geo.R(0.0, 0.5, 0.4, 0.9)},
		{ID: 2, Region: geo.R(0.6, 0.5, 1.0, 0.9)},
	}
	probs := NNProbabilities(q, cands, 40000, 11)
	sum := probs[0].Prob + probs[1].Prob
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if math.Abs(probs[0].Prob-0.5) > 0.02 {
		t.Errorf("symmetric candidates: P1 = %v, want ≈0.5", probs[0].Prob)
	}
}

func TestNNProbabilitiesEdgeCases(t *testing.T) {
	if got := NNProbabilities(geo.Pt(0, 0), nil, 100, 1); len(got) != 0 {
		t.Error("empty candidates")
	}
	cands := []Candidate{{ID: 1, Region: geo.PointRect(geo.Pt(0.5, 0.5))}}
	got := NNProbabilities(geo.Pt(0, 0), cands, 0, 1)
	if len(got) != 1 || got[0].Prob != 0 {
		t.Errorf("zero samples should yield zero probs: %v", got)
	}
	if _, ok := Best(nil); ok {
		t.Error("Best of empty reported ok")
	}
}

func TestNNProbabilitiesDegenerateRegions(t *testing.T) {
	// Exact-location users (k=1 cloaks) work: closest point region wins.
	q := geo.Pt(0, 0)
	cands := []Candidate{
		{ID: 1, Region: geo.PointRect(geo.Pt(0.2, 0.2))},
		{ID: 2, Region: geo.PointRect(geo.Pt(0.7, 0.7))},
	}
	probs := NNProbabilities(q, cands, 100, 5)
	if probs[0].Prob != 1 || probs[1].Prob != 0 {
		t.Errorf("degenerate regions: %v", probs)
	}
}

func BenchmarkPoissonBinomial100(b *testing.B) {
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = float64(i%10) / 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PoissonBinomial(probs)
	}
}

func BenchmarkNNProbabilities(b *testing.B) {
	q := geo.Pt(0.5, 0.5)
	cands := make([]Candidate, 20)
	for i := range cands {
		f := float64(i) / 20
		cands[i] = Candidate{ID: uint64(i + 1), Region: geo.R(f, f, f+0.1, f+0.1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NNProbabilities(q, cands, 1000, 1)
	}
}
